"""Flexibility analysis: the quantities enabling EC optimizes.

The paper's enabling condition (§5) asks that every clause be at least
*2-satisfied*, or have a supporting literal that can flip without breaking
any other clause.  This module measures exactly those properties of a
(formula, assignment) pair, which lets tests and benchmarks verify that
enabling EC actually produced a more flexible solution.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.cnf.literals import evaluate_literal
from repro.errors import AssignmentError


def _require_total(formula: CNFFormula, assignment: Assignment) -> None:
    missing = [v for v in formula.variables if v not in assignment]
    if missing:
        raise AssignmentError(
            f"assignment leaves {len(missing)} formula variables unassigned "
            f"(first few: {missing[:5]})"
        )


def clause_satisfaction_levels(
    formula: CNFFormula, assignment: Assignment
) -> list[int]:
    """Per-clause number of true literals under *assignment*."""
    return formula.satisfaction_levels(assignment)


def k_satisfaction_census(
    formula: CNFFormula, assignment: Assignment
) -> Counter[int]:
    """Histogram: satisfaction level -> number of clauses at that level.

    A census with no mass at 0 means the assignment satisfies the formula;
    the mass at 1 is the set of fragile clauses enabling EC targets.
    """
    return Counter(formula.satisfaction_levels(assignment))


def min_satisfaction_level(formula: CNFFormula, assignment: Assignment) -> int:
    """The smallest per-clause satisfaction level (0 if unsatisfied)."""
    levels = formula.satisfaction_levels(assignment)
    return min(levels) if levels else 0


def fraction_k_satisfied(
    formula: CNFFormula, assignment: Assignment, k: int = 2
) -> float:
    """Fraction of clauses with at least *k* true literals (1.0 if empty)."""
    if formula.num_clauses == 0:
        return 1.0
    levels = formula.satisfaction_levels(assignment)
    return sum(1 for level in levels if level >= k) / len(levels)


def flip_is_safe(
    formula: CNFFormula, assignment: Assignment, var: int
) -> bool:
    """True if flipping *var* keeps every clause of the formula satisfied.

    This is the paper's "can switch its assignment ... without making any
    other clauses unsatisfied" support test.
    """
    flipped = assignment.flipped(var)
    for idx in formula.clauses_with_variable(var):
        if not formula.clause(idx).is_satisfied(flipped):
            return False
    return True


def clause_is_repairable(
    formula: CNFFormula,
    assignment: Assignment,
    clause_index: int,
    eliminated: set[int] | None = None,
) -> bool:
    """True if the clause can be re-satisfied by flipping one of its own
    currently-false literals without breaking any other clause.

    Args:
        eliminated: variables that no longer exist (may not be flipped and
            do not count as satisfying literals).
    """
    eliminated = eliminated or set()
    clause = formula.clause(clause_index)
    for lit in clause:
        var = abs(lit)
        if var in eliminated or var not in assignment:
            continue
        if evaluate_literal(lit, assignment[var]):
            continue  # already true; repair means flipping a false literal
        candidate = assignment.flipped(var)
        ok = True
        for idx in formula.clauses_with_variable(var):
            cl = formula.clause(idx)
            remaining = [l for l in cl if abs(l) not in eliminated]
            if not any(
                evaluate_literal(l, candidate[abs(l)])
                for l in remaining
                if abs(l) in candidate
            ):
                ok = False
                break
        if ok:
            return True
    return False


def survives_elimination(
    formula: CNFFormula, assignment: Assignment, var: int
) -> bool:
    """True if eliminating *var* leaves a solution reachable by local repair.

    After eliminating *var* every clause must either still be satisfied by
    its remaining literals, or be repairable by flipping a single other
    variable (the paper's solution-``E`` behaviour for ``v3``).
    """
    eliminated = {var}
    for idx in formula.clauses_with_variable(var):
        clause = formula.clause(idx)
        remaining = [l for l in clause if abs(l) != var]
        still_ok = any(
            evaluate_literal(l, assignment[abs(l)])
            for l in remaining
            if abs(l) in assignment
        )
        if still_ok:
            continue
        if not clause_is_repairable(formula, assignment, idx, eliminated=eliminated):
            return False
    return True


def elimination_robustness(formula: CNFFormula, assignment: Assignment) -> float:
    """Fraction of variables whose elimination the solution locally survives.

    The paper's motivating example: solution ``S`` has robustness 2/5
    (only v1, v3 eliminations survive) while ``E`` has robustness 5/5.
    """
    _require_total(formula, assignment)
    variables = formula.variables
    if not variables:
        return 1.0
    good = sum(1 for v in variables if survives_elimination(formula, assignment, v))
    return good / len(variables)


@dataclass
class FlexibilityReport:
    """Summary of how EC-ready a (formula, assignment) pair is."""

    num_vars: int
    num_clauses: int
    census: Counter[int] = field(default_factory=Counter)
    fraction_2_satisfied: float = 0.0
    min_level: int = 0
    robustness: float = 0.0

    @property
    def fragile_clauses(self) -> int:
        """Clauses satisfied by exactly one literal."""
        return self.census.get(1, 0)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FlexibilityReport(vars={self.num_vars}, clauses={self.num_clauses}, "
            f"2-sat={self.fraction_2_satisfied:.3f}, fragile={self.fragile_clauses}, "
            f"robustness={self.robustness:.3f})"
        )


def flexibility_report(
    formula: CNFFormula,
    assignment: Assignment,
    with_robustness: bool = True,
) -> FlexibilityReport:
    """Compute the full flexibility summary for a solution.

    Args:
        with_robustness: the elimination-robustness sweep is O(vars x
            clauses); disable for very large instances.
    """
    _require_total(formula, assignment)
    census = k_satisfaction_census(formula, assignment)
    return FlexibilityReport(
        num_vars=formula.num_vars,
        num_clauses=formula.num_clauses,
        census=census,
        fraction_2_satisfied=fraction_k_satisfied(formula, assignment, k=2),
        min_level=min_satisfaction_level(formula, assignment),
        robustness=(
            elimination_robustness(formula, assignment) if with_robustness else float("nan")
        ),
    )
