"""Immutable CNF clauses.

A :class:`Clause` is a duplicate-free, order-normalized disjunction of
literals.  Clauses are hashable so formulas can be treated as multisets or
sets of clauses, and so EC bookkeeping (which clauses were added / marked)
can use them as dictionary keys.
"""

from __future__ import annotations

from typing import Iterable, Iterator, TYPE_CHECKING

from repro.cnf.literals import check_literal, evaluate_literal, literal_to_str
from repro.errors import ClauseError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.cnf.assignment import Assignment


class Clause:
    """A disjunction of DIMACS-style integer literals.

    Literals are deduplicated and stored sorted by (variable, polarity) so
    two clauses with the same literal set compare and hash equal regardless
    of construction order.

    Args:
        literals: any iterable of non-zero ints.

    Raises:
        ClauseError: if the clause is tautological (contains both ``v`` and
            ``-v``) and ``allow_tautology`` is False, or any literal is
            invalid.
    """

    __slots__ = ("_literals", "_variables")

    def __init__(self, literals: Iterable[int], allow_tautology: bool = False):
        lits = sorted({check_literal(l) for l in literals}, key=lambda l: (abs(l), l < 0))
        variables = tuple(sorted({abs(l) for l in lits}))
        if len(variables) < len(lits) and not allow_tautology:
            lit_set = set(lits)
            both = sorted({abs(l) for l in lits if -l in lit_set})
            raise ClauseError(f"tautological clause: variables {both} appear in both polarities")
        self._literals: tuple[int, ...] = tuple(lits)
        self._variables: tuple[int, ...] = variables

    @property
    def literals(self) -> tuple[int, ...]:
        """The normalized literal tuple."""
        return self._literals

    @property
    def variables(self) -> tuple[int, ...]:
        """Sorted tuple of variable indices mentioned by the clause."""
        return self._variables

    def is_empty(self) -> bool:
        """True for the empty clause (unsatisfiable)."""
        return not self._literals

    def is_unit(self) -> bool:
        """True if the clause has exactly one literal."""
        return len(self._literals) == 1

    def is_tautology(self) -> bool:
        """True if some variable occurs in both polarities."""
        return len(self._variables) < len(self._literals)

    def contains_variable(self, var: int) -> bool:
        """True if either polarity of *var* appears in the clause."""
        return var in set(self._variables)

    def polarity_of(self, var: int) -> int | None:
        """Return +1/-1 if *var* appears (un)complemented, else None.

        Returns 0 if the clause is tautological in *var*.
        """
        pos = var in self._literals
        neg = -var in self._literals
        if pos and neg:
            return 0
        if pos:
            return 1
        if neg:
            return -1
        return None

    def without_variable(self, var: int) -> "Clause":
        """Return a copy with every literal of *var* removed.

        This is the paper's notion of *eliminating a variable*: the clause
        must then be satisfied by its remaining literals.  May produce the
        empty clause.
        """
        return Clause((l for l in self._literals if abs(l) != var), allow_tautology=True)

    def satisfied_literals(self, assignment: "Assignment") -> tuple[int, ...]:
        """Literals that evaluate to true under *assignment*.

        Unassigned variables count as not satisfying.
        """
        out = []
        for lit in self._literals:
            value = assignment.get(abs(lit))
            if value is not None and evaluate_literal(lit, value):
                out.append(lit)
        return tuple(out)

    def satisfaction_level(self, assignment: "Assignment") -> int:
        """Number of true literals — the paper's *k* in "k-Satisfied"."""
        return len(self.satisfied_literals(assignment))

    def is_satisfied(self, assignment: "Assignment") -> bool:
        """True if at least one literal evaluates to true."""
        for lit in self._literals:
            value = assignment.get(abs(lit))
            if value is not None and evaluate_literal(lit, value):
                return True
        return False

    def __iter__(self) -> Iterator[int]:
        return iter(self._literals)

    def __len__(self) -> int:
        return len(self._literals)

    def __contains__(self, lit: int) -> bool:
        return lit in self._literals

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Clause):
            return NotImplemented
        return self._literals == other._literals

    def __hash__(self) -> int:
        return hash(self._literals)

    def __repr__(self) -> str:
        body = " + ".join(literal_to_str(l) for l in self._literals) or "⊥"
        return f"Clause({body})"
