"""Synthetic stand-ins for the DIMACS benchmark families of the paper.

The paper's tables use the classic DIMACS SAT archive (par8-1-c, ii8a1,
jnh1, f600, g250.15, ...).  Those files are not redistributable here and no
network is available, so this module regenerates each *family* from its
published construction recipe, at the exact (variables, clauses) sizes the
tables report:

* ``par``  — minimal-disagreement parity learning: XOR chains compiled to
  CNF (each XOR constraint is four width-3 clauses) plus equivalence
  2-clauses;
* ``ii``   — inductive-inference covering instances: implication 2-clauses
  plus long positive covering clauses;
* ``jnh``  — random clauses with mixed widths averaging ~5;
* ``f``    — uniform random 3-SAT near the phase-transition density;
* ``g``    — graph k-colorability compiled to CNF (at-least-one-color rows
  plus per-edge per-color conflict 2-clauses).

Every generated instance is *planted-satisfiable*: clauses are constructed
or filtered to be consistent with a hidden assignment, because each paper
experiment requires satisfiable starting instances.  The generator returns
the plant so tests never need an expensive solve to get a witness.

Instances are deterministic functions of (name, seed); the benchmark
registry (:mod:`repro.bench.registry`) pins both.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cnf.assignment import Assignment
from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import _rng, _xor_clauses, random_clause
from repro.errors import CNFError


@dataclass(frozen=True)
class FamilyInstance:
    """A generated benchmark instance with its satisfiability witness."""

    name: str
    formula: CNFFormula
    witness: Assignment
    family: str

    def check(self) -> None:
        """Assert the witness satisfies the formula (cheap sanity gate)."""
        if not self.formula.is_satisfied(self.witness):
            raise CNFError(f"witness does not satisfy generated instance {self.name}")


def _pad_with_planted_clauses(
    clauses: list[Clause],
    num_vars: int,
    target_clauses: int,
    plant: Assignment,
    rng: random.Random,
    width: int = 2,
    min_level: int = 2,
) -> None:
    """Append random plant-consistent clauses until *target_clauses*.

    Args:
        min_level: required number of plant-true literals per padding
            clause.  Level 2 means no padding variable is ever the sole
            satisfier of a padding clause, so eliminating it keeps the
            plant working — the slack the paper's EC trials (which remove
            variables "making sure that we did not make the instance
            non-satisfiable") depend on.
    """
    variables = range(1, num_vars + 1)
    w = min(width, num_vars)
    level = min(min_level, w)
    while len(clauses) < target_clauses:
        cl = random_clause(variables, w, rng)
        if cl.satisfaction_level(plant) >= level:
            clauses.append(cl)


def parity_instance(
    num_vars: int,
    num_clauses: int,
    seed: int | random.Random | None = 0,
    name: str = "par",
    chain_fraction: float = 0.4,
) -> FamilyInstance:
    """par-family stand-in: planted XOR chains plus planted padding.

    Only ``chain_fraction`` of the variables participate in the rigid XOR
    chains; the remainder occur in padded width-2/3 clauses.  Real par
    instances also mix rigid parity cores with softer equivalence
    machinery, and the slack variables are what makes the paper's EC
    trials (which eliminate variables while preserving satisfiability)
    possible at all — eliminating any chain variable turns its XOR group
    into a contradiction.
    """
    rng = _rng(seed)
    if num_vars < 3:
        raise CNFError("parity instances need at least 3 variables")
    plant = Assignment({v: bool(rng.getrandbits(1)) for v in range(1, num_vars + 1)})
    clauses: list[Clause] = []
    # Chain XOR constraints over consecutive triples, consistent with plant.
    order = list(range(1, num_vars + 1))
    rng.shuffle(order)
    chain_vars = max(3, int(num_vars * chain_fraction))
    order = order[:chain_vars]
    i = 0
    while i + 2 < len(order) and len(clauses) + 4 <= num_clauses // 2:
        a, b, c = order[i], order[i + 1], order[i + 2]
        parity = plant[a] ^ plant[b] ^ plant[c]
        clauses.extend(_xor_clauses(a, b, c, parity))
        i += 2  # overlapping chain: c of this triple is a of the next
    num_two = (num_clauses - len(clauses)) // 3 + len(clauses)
    _pad_with_planted_clauses(clauses, num_vars, num_two, plant, rng, width=2)
    _pad_with_planted_clauses(clauses, num_vars, num_clauses, plant, rng, width=3)
    formula = CNFFormula(clauses[:num_clauses], num_vars=num_vars)
    return FamilyInstance(name, formula, plant, family="par")


def ii_instance(
    num_vars: int,
    num_clauses: int,
    seed: int | random.Random | None = 0,
    name: str = "ii",
    cover_width: int = 8,
    cover_fraction: float = 0.25,
) -> FamilyInstance:
    """ii-family stand-in: long covering clauses + short implications.

    Padding mixes width 2 and 3; pure 2-clause padding would leave unit
    clauses behind whenever an EC trial eliminates a variable, making most
    eliminations unsatisfiable.
    """
    rng = _rng(seed)
    plant = Assignment({v: bool(rng.getrandbits(1)) for v in range(1, num_vars + 1)})
    clauses: list[Clause] = []
    variables = range(1, num_vars + 1)
    num_cover = int(num_clauses * cover_fraction)
    w = min(cover_width, num_vars)
    while len(clauses) < num_cover:
        # Long positive "cover" clause: mostly positive literals, planted.
        chosen = rng.sample(list(variables), w)
        lits = [v if (plant[v] or rng.random() < 0.8) else -v for v in chosen]
        cl = Clause(lits)
        if cl.satisfaction_level(plant) >= min(2, len(cl)):
            clauses.append(cl)
    num_two = len(clauses) + (num_clauses - len(clauses)) // 2
    _pad_with_planted_clauses(clauses, num_vars, num_two, plant, rng, width=2)
    _pad_with_planted_clauses(clauses, num_vars, num_clauses, plant, rng, width=3)
    formula = CNFFormula(clauses[:num_clauses], num_vars=num_vars)
    return FamilyInstance(name, formula, plant, family="ii")


def jnh_instance(
    num_vars: int,
    num_clauses: int,
    seed: int | random.Random | None = 0,
    name: str = "jnh",
) -> FamilyInstance:
    """jnh-family stand-in: mixed-width random clauses (mean width ~5).

    Clauses are drawn at plant satisfaction level >= 2 (width permitting):
    jnh instances are dense (clause/variable ratio ~8), and level-1
    planting would leave no variable safely eliminable, foreclosing the
    paper's variable-removal EC trials on these rows.
    """
    rng = _rng(seed)
    plant = Assignment({v: bool(rng.getrandbits(1)) for v in range(1, num_vars + 1)})
    widths = {2: 0.10, 3: 0.20, 4: 0.20, 5: 0.20, 6: 0.15, 7: 0.10, 8: 0.05}
    choices = list(widths)
    weights = [widths[w] for w in choices]
    clauses: list[Clause] = []
    variables = range(1, num_vars + 1)
    while len(clauses) < num_clauses:
        width = min(rng.choices(choices, weights=weights)[0], num_vars)
        cl = random_clause(variables, width, rng)
        if cl.satisfaction_level(plant) >= min(2, width):
            clauses.append(cl)
    formula = CNFFormula(clauses, num_vars=num_vars)
    return FamilyInstance(name, formula, plant, family="jnh")


def f_instance(
    num_vars: int,
    num_clauses: int,
    seed: int | random.Random | None = 0,
    name: str = "f",
) -> FamilyInstance:
    """f-family stand-in: planted random 3-SAT (f600 = 600 vars, 2550 cls)."""
    rng = _rng(seed)
    plant = Assignment({v: bool(rng.getrandbits(1)) for v in range(1, num_vars + 1)})
    clauses: list[Clause] = []
    variables = range(1, num_vars + 1)
    while len(clauses) < num_clauses:
        cl = random_clause(variables, min(3, num_vars), rng)
        if cl.is_satisfied(plant):
            clauses.append(cl)
    formula = CNFFormula(clauses, num_vars=num_vars)
    return FamilyInstance(name, formula, plant, family="f")


def coloring_instance(
    num_nodes: int,
    num_colors: int,
    num_edges: int,
    seed: int | random.Random | None = 0,
    name: str = "g",
) -> FamilyInstance:
    """g-family stand-in: random graph k-colorability compiled to CNF.

    Variables ``x[node, color]`` are numbered ``(node-1) * num_colors +
    color`` for node in 1..N, color in 1..C.  Clauses: one at-least-one-
    color row per node, one binary conflict clause per (edge, color).
    A hidden proper coloring is planted by only drawing non-monochromatic
    edges, so ``num_vars = N*C`` and ``num_clauses = N + E*C`` exactly.
    """
    rng = _rng(seed)
    if num_colors < 2:
        raise CNFError("coloring instances need at least 2 colors")
    color_of = {node: rng.randrange(1, num_colors + 1) for node in range(1, num_nodes + 1)}

    def var(node: int, color: int) -> int:
        return (node - 1) * num_colors + color

    clauses: list[Clause] = [
        Clause([var(node, c) for c in range(1, num_colors + 1)])
        for node in range(1, num_nodes + 1)
    ]
    edges: set[tuple[int, int]] = set()
    max_edges = num_nodes * (num_nodes - 1) // 2
    if num_edges > max_edges:
        raise CNFError(f"{num_edges} edges requested but only {max_edges} possible")
    attempts = 0
    while len(edges) < num_edges:
        attempts += 1
        if attempts > 200 * num_edges + 1000:
            raise CNFError("could not draw enough non-monochromatic edges")
        u = rng.randrange(1, num_nodes + 1)
        v = rng.randrange(1, num_nodes + 1)
        if u == v or color_of[u] == color_of[v]:
            continue
        edges.add((min(u, v), max(u, v)))
    for (u, v) in sorted(edges):
        for c in range(1, num_colors + 1):
            clauses.append(Clause([-var(u, c), -var(v, c)]))
    plant = Assignment(
        {
            var(node, c): (color_of[node] == c)
            for node in range(1, num_nodes + 1)
            for c in range(1, num_colors + 1)
        }
    )
    formula = CNFFormula(clauses, num_vars=num_nodes * num_colors)
    return FamilyInstance(name, formula, plant, family="g")


#: Paper-exact instance parameters: name -> (constructor kwargs).  Sizes are
#: the (vars, clauses) columns of Tables 1-3.
PAPER_INSTANCE_PARAMS: dict[str, dict] = {
    "par8-1-c": {"family": "par", "num_vars": 64, "num_clauses": 254},
    "ii8a1": {"family": "ii", "num_vars": 66, "num_clauses": 186},
    "par8-3-c": {"family": "par", "num_vars": 75, "num_clauses": 298},
    "jnh201": {"family": "jnh", "num_vars": 100, "num_clauses": 800},
    "jnh1": {"family": "jnh", "num_vars": 100, "num_clauses": 850},
    "ii8a2": {"family": "ii", "num_vars": 180, "num_clauses": 800},
    "ii8b2": {"family": "ii", "num_vars": 576, "num_clauses": 4088},
    "f600": {"family": "f", "num_vars": 600, "num_clauses": 2550},
    "par32-5-c": {"family": "par", "num_vars": 1339, "num_clauses": 5350},
    "ii16a1": {"family": "ii", "num_vars": 1650, "num_clauses": 19368},
    "par32-5": {"family": "par", "num_vars": 3176, "num_clauses": 10325},
    # g250.15: 250 nodes x 15 colors = 3750 vars; 250 + 15581*15 = 233965.
    "g250.15": {"family": "g", "num_nodes": 250, "num_colors": 15, "num_edges": 15581},
    # g250.29: 250 nodes x 29 colors = 7250 vars; 250 + 15668*29 = 454622.
    "g250.29": {"family": "g", "num_nodes": 250, "num_colors": 29, "num_edges": 15668},
}


def make_instance(name: str, seed: int = 0, scale: float = 1.0) -> FamilyInstance:
    """Generate the stand-in for a named paper instance.

    Args:
        name: a key of :data:`PAPER_INSTANCE_PARAMS`.
        seed: RNG seed; the benchmark registry pins this.
        scale: shrink factor in (0, 1] applied to the instance size so CI
            and unit tests can exercise the same structure cheaply.

    Raises:
        CNFError: for unknown names or a degenerate scale.
    """
    try:
        params = dict(PAPER_INSTANCE_PARAMS[name])
    except KeyError:
        known = ", ".join(sorted(PAPER_INSTANCE_PARAMS))
        raise CNFError(f"unknown instance {name!r}; known: {known}") from None
    if not 0 < scale <= 1:
        raise CNFError(f"scale must be in (0, 1], got {scale}")
    family = params.pop("family")
    if family == "g":
        nodes = max(4, round(params["num_nodes"] * scale))
        colors = max(3, round(params["num_colors"] * (scale ** 0.5)))
        edges = max(nodes, round(params["num_edges"] * scale * scale))
        edges = min(edges, nodes * (nodes - 1) // 2)
        return coloring_instance(nodes, colors, edges, seed=seed, name=name)
    num_vars = max(6, round(params["num_vars"] * scale))
    num_clauses = max(num_vars, round(params["num_clauses"] * scale))
    maker = {"par": parity_instance, "ii": ii_instance, "jnh": jnh_instance, "f": f_instance}[family]
    return maker(num_vars, num_clauses, seed=seed, name=name)
