"""CNF preprocessing: unit propagation, pure literals, subsumption.

Standard SAT preprocessing used ahead of the ILP encoding.  Fast EC
benefits most: the reduced instance ``F''`` often contains forced units
(the newly added clauses), and propagating them before encoding shrinks
the ILP further.  Every reduction records its reasoning so the solution
of the simplified formula can be lifted back to the original variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cnf.assignment import Assignment
from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula


@dataclass
class SimplificationResult:
    """A simplified formula plus the lift-back information.

    Attributes:
        formula: the simplified formula (None when UNSAT was proven).
        forced: variable -> value assignments implied by the original
            formula (units and pure literals).
        removed_clauses: count of clauses deleted (satisfied, subsumed).
        proven_unsat: True if preprocessing derived the empty clause.
    """

    formula: CNFFormula | None
    forced: Assignment = field(default_factory=Assignment)
    removed_clauses: int = 0
    proven_unsat: bool = False

    def lift(self, solution: Assignment) -> Assignment:
        """Combine a solution of the simplified formula with forcings."""
        return self.forced.merged_with(solution)


def propagate_units(formula: CNFFormula) -> SimplificationResult:
    """Exhaustive unit propagation.

    Returns a formula with all forced variables eliminated; their values
    are recorded in ``forced``.  Detects conflicts (UNSAT).
    """
    forced = Assignment()
    clauses = [set(cl.literals) for cl in formula.clauses]
    alive = [True] * len(clauses)
    removed = 0
    changed = True
    while changed:
        changed = False
        for i, lits in enumerate(clauses):
            if not alive[i]:
                continue
            if not lits:
                return SimplificationResult(None, forced, removed, proven_unsat=True)
            if len(lits) == 1:
                (lit,) = lits
                var, val = abs(lit), lit > 0
                prior = forced.get(var)
                if prior is not None and prior is not val:
                    return SimplificationResult(None, forced, removed, proven_unsat=True)
                forced[var] = val
                changed = True
                for j, other in enumerate(clauses):
                    if not alive[j]:
                        continue
                    if lit in other:
                        alive[j] = False
                        removed += 1
                    elif -lit in other:
                        other.discard(-lit)
                        if not other:
                            return SimplificationResult(
                                None, forced, removed, proven_unsat=True
                            )
    out = CNFFormula(
        (Clause(lits) for i, lits in enumerate(clauses) if alive[i]),
    )
    for var in formula.variables:
        if var not in forced and var not in set(out.variables):
            out.add_variable(var)
    return SimplificationResult(out, forced, removed)


def eliminate_pure_literals(formula: CNFFormula) -> SimplificationResult:
    """Fix every pure literal to true and drop its clauses (iterated)."""
    forced = Assignment()
    current = formula.copy()
    removed = 0
    while True:
        pure = current.pure_literals()
        if not pure:
            break
        for lit in pure:
            var = abs(lit)
            if var in forced:
                continue
            forced[var] = lit > 0
        survivors = [
            cl
            for cl in current.clauses
            if not any(forced.get(abs(l)) is (l > 0) for l in cl)
        ]
        removed += current.num_clauses - len(survivors)
        nxt = CNFFormula(survivors)
        for var in current.variables:
            if var not in forced and var not in set(nxt.variables):
                nxt.add_variable(var)
        if nxt.num_clauses == current.num_clauses:
            break
        current = nxt
    return SimplificationResult(current, forced, removed)


def remove_subsumed(formula: CNFFormula) -> SimplificationResult:
    """Drop clauses subsumed by a (strict or equal) subset clause."""
    clauses = sorted(
        set(formula.clauses), key=lambda cl: (len(cl), cl.literals)
    )
    kept: list[Clause] = []
    kept_sets: list[set[int]] = []
    for cl in clauses:
        lits = set(cl.literals)
        if any(s <= lits for s in kept_sets):
            continue
        kept.append(cl)
        kept_sets.append(lits)
    out = CNFFormula(kept)
    for var in formula.variables:
        if var not in set(out.variables):
            out.add_variable(var)
    return SimplificationResult(
        out, removed_clauses=formula.num_clauses - out.num_clauses
    )


def simplify(formula: CNFFormula, rounds: int = 10) -> SimplificationResult:
    """Full pipeline: units -> pure literals -> subsumption, to fixpoint.

    Returns:
        A :class:`SimplificationResult` whose ``forced`` assignment,
        merged with any model of ``formula`` (the simplified one),
        satisfies the original formula.
    """
    forced = Assignment()
    current = formula.copy()
    removed = 0
    for _ in range(rounds):
        before = (current.num_clauses, len(forced))
        units = propagate_units(current)
        if units.proven_unsat:
            return SimplificationResult(None, forced.merged_with(units.forced),
                                        removed, proven_unsat=True)
        forced = forced.merged_with(units.forced)
        removed += units.removed_clauses
        current = units.formula
        pures = eliminate_pure_literals(current)
        forced = forced.merged_with(pures.forced)
        removed += pures.removed_clauses
        current = pures.formula
        subs = remove_subsumed(current)
        removed += subs.removed_clauses
        current = subs.formula
        if (current.num_clauses, len(forced)) == before:
            break
    return SimplificationResult(current, forced, removed)
