"""Random CNF generators.

These are the raw building blocks; :mod:`repro.cnf.families` composes them
into the structured families that stand in for the DIMACS benchmarks of the
paper's tables.  All generators accept an explicit :class:`random.Random`
(or a seed) so instances are reproducible.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.cnf.assignment import Assignment
from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula
from repro.errors import CNFError


def _rng(seed: int | random.Random | None) -> random.Random:
    """Coerce a seed or Random into a Random instance."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def random_clause(
    variables: Iterable[int],
    width: int,
    rng: int | random.Random | None = None,
) -> Clause:
    """A random non-tautological clause of exactly *width* distinct variables."""
    rng = _rng(rng)
    pool = list(variables)
    if width > len(pool):
        raise CNFError(f"cannot draw {width} distinct variables from {len(pool)}")
    chosen = rng.sample(pool, width)
    return Clause(v if rng.random() < 0.5 else -v for v in chosen)


def random_ksat(
    num_vars: int,
    num_clauses: int,
    k: int = 3,
    rng: int | random.Random | None = None,
) -> CNFFormula:
    """Uniform random k-SAT: *num_clauses* clauses of width *k*.

    No satisfiability guarantee — at clause/variable ratio ~4.27 (k=3) the
    instance sits at the phase transition, which is how the paper's ``f600``
    instance (600 vars, 2550 clauses) was constructed.
    """
    rng = _rng(rng)
    variables = range(1, num_vars + 1)
    return CNFFormula(
        (random_clause(variables, k, rng) for _ in range(num_clauses)),
        num_vars=num_vars,
    )


def random_planted_ksat(
    num_vars: int,
    num_clauses: int,
    k: int = 3,
    rng: int | random.Random | None = None,
) -> tuple[CNFFormula, Assignment]:
    """Random k-SAT with a planted satisfying assignment.

    Each clause is re-drawn until it contains at least one literal true
    under the hidden assignment, so the returned formula is guaranteed
    satisfiable — a requirement for every table in the paper (EC trials
    "make sure that we did not make the instance non-satisfiable").

    Returns:
        (formula, planted) where ``planted`` satisfies ``formula``.
    """
    rng = _rng(rng)
    planted = Assignment({v: rng.random() < 0.5 for v in range(1, num_vars + 1)})
    variables = range(1, num_vars + 1)
    clauses = []
    for _ in range(num_clauses):
        while True:
            cl = random_clause(variables, k, rng)
            if cl.is_satisfied(planted):
                clauses.append(cl)
                break
    return CNFFormula(clauses, num_vars=num_vars), planted


def _xor_clauses(a: int, b: int, c: int, parity: bool) -> list[Clause]:
    """CNF for the constraint ``a XOR b XOR c == parity``.

    Four width-3 clauses: all sign patterns with an even (parity=True ->
    odd) number of negations excluded.
    """
    out = []
    for sa in (1, -1):
        for sb in (1, -1):
            for sc in (1, -1):
                negs = (sa < 0) + (sb < 0) + (sc < 0)
                # Clause (sa*a + sb*b + sc*c) forbids the single assignment
                # a=(sa<0), b=(sb<0), c=(sc<0); that point has XOR value
                # (sa<0)^(sb<0)^(sc<0) and must be forbidden iff it violates
                # the constraint.
                point_xor = bool(negs % 2)
                if point_xor != parity:
                    out.append(Clause([sa * a, sb * b, sc * c]))
    return out


def parity_pair_steps(
    num_inputs: int,
    rng: int | random.Random | None = 0,
) -> tuple[CNFFormula, Assignment, list[list[Clause]]]:
    """The dual-parity contradiction, staged as an EC change chain.

    Returns ``(base, witness, groups)``:

    * ``base`` — one complete XOR accumulator chain over *num_inputs*
      input variables plus its final parity unit; satisfiable, and
      ``witness`` is a planted model (inputs random, accumulators
      forced).  The second chain's accumulator variables are already
      active (DIMACS-header padding), so adding its clauses later is a
      pure clause-adding (tightening) change;
    * ``groups`` — ordered clause batches assembling a second accumulator
      chain over the *same* inputs, ending with a unit asserting the
      opposite final parity.  Every prefix of the groups keeps the
      instance satisfiable (and ``witness`` valid); appending the last
      group tips it into UNSAT.

    Variable identifiers are shuffled by *rng* so static branching
    orders cannot accidentally follow a chain.  Total size once all
    groups are applied: ``3 * num_inputs - 2`` variables,
    ``8 * (num_inputs - 1) + 2`` clauses.
    """
    rng = _rng(rng)
    if num_inputs < 2:
        raise CNFError("unsat parity instances need at least 2 inputs")
    k = num_inputs
    n = k + 2 * (k - 1)
    ids = list(range(1, n + 1))
    rng.shuffle(ids)
    inputs = ids[:k]
    acc_a = ids[k:k + (k - 1)]
    acc_b = ids[k + (k - 1):]

    # Plant the inputs, force both accumulator chains to match.
    plant_bits = {v: bool(rng.getrandbits(1)) for v in inputs}
    acc_values: dict[int, bool] = {}
    running = plant_bits[inputs[0]] ^ plant_bits[inputs[1]]
    for i, (a, b) in enumerate(zip(acc_a, acc_b)):
        acc_values[a] = acc_values[b] = running
        if i + 2 < k:
            running ^= plant_bits[inputs[i + 2]]
    parity = acc_values[acc_a[-1]]

    base_clauses = list(_xor_clauses(acc_a[0], inputs[0], inputs[1], False))
    for i in range(1, k - 1):
        base_clauses.extend(_xor_clauses(acc_a[i], acc_a[i - 1], inputs[i + 1], False))
    base_clauses.append(Clause([acc_a[-1] if parity else -acc_a[-1]]))
    base = CNFFormula(base_clauses, num_vars=n)
    witness = Assignment({**plant_bits, **acc_values})

    groups = [_xor_clauses(acc_b[0], inputs[0], inputs[1], False)]
    for i in range(1, k - 1):
        groups.append(_xor_clauses(acc_b[i], acc_b[i - 1], inputs[i + 1], False))
    # The contradiction: the second chain computes the same parity, but
    # its final unit asserts the opposite value.
    groups.append([Clause([-acc_b[-1] if parity else acc_b[-1]])])
    return base, witness, groups


def unsat_parity_pair(
    num_inputs: int,
    rng: int | random.Random | None = 0,
) -> CNFFormula:
    """Provably unsatisfiable parity instance (par-family UNSAT variant).

    Two XOR accumulator chains compute the parity of the same
    *num_inputs* input variables through disjoint accumulator variables,
    and two unit clauses assert contradictory final parities — so the
    instance is UNSAT, but only a reasoner that combines *every* chain
    constraint can see it.  Chronological DPLL re-derives the same
    contradiction in exponentially many leaves, while clause learning
    refutes it in O(num_inputs) conflicts, which makes this the
    benchmark separating CDCL from DPLL (see ``repro bench engine``).

    This is exactly :func:`parity_pair_steps` with every group applied.
    """
    base, _witness, groups = parity_pair_steps(num_inputs, rng)
    out = base.copy()
    for group in groups:
        for cl in group:
            out.add_clause(cl)
    return out


def pigeonhole(holes: int) -> CNFFormula:
    """The pigeonhole principle PHP(holes+1, holes) — provably UNSAT.

    ``holes + 1`` pigeons must each take a hole (one long positive clause
    per pigeon) and no hole may hold two pigeons (one binary clause per
    hole and pigeon pair).  A classic resolution-hard refutation target;
    the differential harness uses small sizes as guaranteed-UNSAT input.
    """
    if holes < 1:
        raise CNFError("pigeonhole instances need at least 1 hole")
    pigeons = holes + 1

    def var(pigeon: int, hole: int) -> int:
        return pigeon * holes + hole + 1

    clauses: list[Clause] = [
        Clause([var(p, h) for h in range(holes)]) for p in range(pigeons)
    ]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append(Clause([-var(p1, h), -var(p2, h)]))
    return CNFFormula(clauses, num_vars=pigeons * holes)


def random_mixed_width(
    num_vars: int,
    num_clauses: int,
    widths: dict[int, float],
    rng: int | random.Random | None = None,
    planted: Assignment | None = None,
) -> CNFFormula:
    """Random CNF with clause widths drawn from a distribution.

    Args:
        widths: mapping width -> probability weight (normalized internally).
        planted: if given, clauses are re-drawn until satisfied by it.

    jnh-style instances mix widths around an average of ~5; ii-style
    instances mix many short clauses with a few long covering clauses.
    """
    rng = _rng(rng)
    variables = range(1, num_vars + 1)
    choices = list(widths)
    weights = [widths[w] for w in choices]
    clauses = []
    for _ in range(num_clauses):
        width = min(rng.choices(choices, weights=weights)[0], num_vars)
        while True:
            cl = random_clause(variables, width, rng)
            if planted is None or cl.is_satisfied(planted):
                clauses.append(cl)
                break
    return CNFFormula(clauses, num_vars=num_vars)
