"""Random CNF generators.

These are the raw building blocks; :mod:`repro.cnf.families` composes them
into the structured families that stand in for the DIMACS benchmarks of the
paper's tables.  All generators accept an explicit :class:`random.Random`
(or a seed) so instances are reproducible.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.cnf.assignment import Assignment
from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula
from repro.errors import CNFError


def _rng(seed: int | random.Random | None) -> random.Random:
    """Coerce a seed or Random into a Random instance."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def random_clause(
    variables: Iterable[int],
    width: int,
    rng: int | random.Random | None = None,
) -> Clause:
    """A random non-tautological clause of exactly *width* distinct variables."""
    rng = _rng(rng)
    pool = list(variables)
    if width > len(pool):
        raise CNFError(f"cannot draw {width} distinct variables from {len(pool)}")
    chosen = rng.sample(pool, width)
    return Clause(v if rng.random() < 0.5 else -v for v in chosen)


def random_ksat(
    num_vars: int,
    num_clauses: int,
    k: int = 3,
    rng: int | random.Random | None = None,
) -> CNFFormula:
    """Uniform random k-SAT: *num_clauses* clauses of width *k*.

    No satisfiability guarantee — at clause/variable ratio ~4.27 (k=3) the
    instance sits at the phase transition, which is how the paper's ``f600``
    instance (600 vars, 2550 clauses) was constructed.
    """
    rng = _rng(rng)
    variables = range(1, num_vars + 1)
    return CNFFormula(
        (random_clause(variables, k, rng) for _ in range(num_clauses)),
        num_vars=num_vars,
    )


def random_planted_ksat(
    num_vars: int,
    num_clauses: int,
    k: int = 3,
    rng: int | random.Random | None = None,
) -> tuple[CNFFormula, Assignment]:
    """Random k-SAT with a planted satisfying assignment.

    Each clause is re-drawn until it contains at least one literal true
    under the hidden assignment, so the returned formula is guaranteed
    satisfiable — a requirement for every table in the paper (EC trials
    "make sure that we did not make the instance non-satisfiable").

    Returns:
        (formula, planted) where ``planted`` satisfies ``formula``.
    """
    rng = _rng(rng)
    planted = Assignment({v: rng.random() < 0.5 for v in range(1, num_vars + 1)})
    variables = range(1, num_vars + 1)
    clauses = []
    for _ in range(num_clauses):
        while True:
            cl = random_clause(variables, k, rng)
            if cl.is_satisfied(planted):
                clauses.append(cl)
                break
    return CNFFormula(clauses, num_vars=num_vars), planted


def random_mixed_width(
    num_vars: int,
    num_clauses: int,
    widths: dict[int, float],
    rng: int | random.Random | None = None,
    planted: Assignment | None = None,
) -> CNFFormula:
    """Random CNF with clause widths drawn from a distribution.

    Args:
        widths: mapping width -> probability weight (normalized internally).
        planted: if given, clauses are re-drawn until satisfied by it.

    jnh-style instances mix widths around an average of ~5; ii-style
    instances mix many short clauses with a few long covering clauses.
    """
    rng = _rng(rng)
    variables = range(1, num_vars + 1)
    choices = list(widths)
    weights = [widths[w] for w in choices]
    clauses = []
    for _ in range(num_clauses):
        width = min(rng.choices(choices, weights=weights)[0], num_vars)
        while True:
            cl = random_clause(variables, width, rng)
            if planted is None or cl.is_satisfied(planted):
                clauses.append(cl)
                break
    return CNFFormula(clauses, num_vars=num_vars)
