"""CNF substrate: literals, clauses, formulas, DIMACS I/O and EC mutations.

This subpackage provides everything the paper implicitly assumes about
Boolean formulas in conjunctive normal form:

* :mod:`repro.cnf.literals` -- DIMACS-style integer literal helpers;
* :mod:`repro.cnf.clause` -- immutable clauses;
* :mod:`repro.cnf.formula` -- mutable CNF formulas with stable variable ids;
* :mod:`repro.cnf.packed` -- the flat-array :class:`PackedCNF` kernel the
  solvers, portfolio transport, and incremental fingerprints consume;
* :mod:`repro.cnf.assignment` -- (partial) truth assignments;
* :mod:`repro.cnf.dimacs` -- DIMACS CNF reader/writer;
* :mod:`repro.cnf.generators` -- random formula generators;
* :mod:`repro.cnf.families` -- synthetic stand-ins for the DIMACS benchmark
  families used in the paper's tables (par, ii, jnh, f, g);
* :mod:`repro.cnf.mutations` -- the engineering-change edit operations
  (add/remove clause, add/remove variable);
* :mod:`repro.cnf.analysis` -- k-satisfiability census and flexibility
  metrics used by enabling EC.
"""

from repro.cnf.literals import (
    complement,
    is_negative,
    is_positive,
    literal,
    literal_to_str,
    variable_of,
)
from repro.cnf.clause import Clause
from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.cnf.packed import PackedCNF
from repro.cnf.dimacs import parse_dimacs, read_dimacs, to_dimacs, write_dimacs
from repro.cnf.generators import (
    random_ksat,
    random_planted_ksat,
    random_mixed_width,
)
from repro.cnf.analysis import (
    clause_satisfaction_levels,
    elimination_robustness,
    flexibility_report,
    k_satisfaction_census,
    min_satisfaction_level,
)
from repro.cnf.simplify import (
    SimplificationResult,
    propagate_units,
    simplify,
)

__all__ = [
    "Assignment",
    "CNFFormula",
    "Clause",
    "clause_satisfaction_levels",
    "complement",
    "elimination_robustness",
    "flexibility_report",
    "is_negative",
    "is_positive",
    "k_satisfaction_census",
    "literal",
    "literal_to_str",
    "min_satisfaction_level",
    "PackedCNF",
    "parse_dimacs",
    "random_ksat",
    "random_mixed_width",
    "random_planted_ksat",
    "read_dimacs",
    "SimplificationResult",
    "propagate_units",
    "simplify",
    "to_dimacs",
    "variable_of",
    "write_dimacs",
]
