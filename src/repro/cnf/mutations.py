"""Engineering-change mutation operators on CNF instances.

The paper's experiments perturb instances in four ways: add clauses, delete
clauses, add variables, delete (eliminate) variables.  Table 2 uses
"eliminated three variables and added ten clauses"; Table 3 "randomly added
and deleted five variables and randomly added and deleted five clauses,
making sure that we did not make the instance non-satisfiable".

This module implements those trial generators.  Each returns a *new*
formula plus a :class:`MutationLog` describing the edits, leaving the
original untouched so before/after comparisons stay easy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cnf.assignment import Assignment
from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import _rng, random_clause
from repro.errors import ChangeError


@dataclass
class MutationLog:
    """Record of the EC edits applied to an instance."""

    added_clauses: list[Clause] = field(default_factory=list)
    removed_clauses: list[Clause] = field(default_factory=list)
    added_variables: list[int] = field(default_factory=list)
    removed_variables: list[int] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"+{len(self.added_clauses)} clauses, -{len(self.removed_clauses)} clauses, "
            f"+{len(self.added_variables)} vars, -{len(self.removed_variables)} vars"
        )


def add_random_clauses(
    formula: CNFFormula,
    count: int,
    width: int = 3,
    rng: int | random.Random | None = None,
    satisfiable_with: Assignment | None = None,
    log: MutationLog | None = None,
) -> tuple[CNFFormula, MutationLog]:
    """Add *count* random clauses of the given width.

    Args:
        satisfiable_with: if given, each new clause is re-drawn until it is
            satisfied by this assignment, guaranteeing the mutated formula
            stays satisfiable (the witness keeps working).
    """
    rng = _rng(rng)
    out = formula.copy()
    log = log or MutationLog()
    variables = list(out.variables)
    if not variables:
        raise ChangeError("cannot add clauses to a formula with no variables")
    w = min(width, len(variables))
    for _ in range(count):
        for _attempt in range(1000):
            cl = random_clause(variables, w, rng)
            if satisfiable_with is None or cl.is_satisfied(satisfiable_with):
                break
        else:  # pragma: no cover - probability ~0
            raise ChangeError("could not draw a clause satisfied by the witness")
        out.add_clause(cl)
        log.added_clauses.append(cl)
    return out, log


def remove_random_clauses(
    formula: CNFFormula,
    count: int,
    rng: int | random.Random | None = None,
    log: MutationLog | None = None,
) -> tuple[CNFFormula, MutationLog]:
    """Delete *count* clauses chosen uniformly at random."""
    rng = _rng(rng)
    out = formula.copy()
    log = log or MutationLog()
    if count > out.num_clauses:
        raise ChangeError(
            f"cannot remove {count} clauses from a formula with {out.num_clauses}"
        )
    for _ in range(count):
        idx = rng.randrange(out.num_clauses)
        log.removed_clauses.append(out.remove_clause_at(idx))
    return out, log


def add_fresh_variables(
    formula: CNFFormula,
    count: int,
    log: MutationLog | None = None,
) -> tuple[CNFFormula, MutationLog]:
    """Activate *count* fresh variables (don't-cares for any old solution)."""
    out = formula.copy()
    log = log or MutationLog()
    for _ in range(count):
        log.added_variables.append(out.add_variable())
    return out, log


def eliminate_random_variables(
    formula: CNFFormula,
    count: int,
    rng: int | random.Random | None = None,
    keep_satisfiable_with: Assignment | None = None,
    log: MutationLog | None = None,
    max_attempts: int = 200,
) -> tuple[CNFFormula, MutationLog]:
    """Eliminate *count* variables chosen at random.

    Args:
        keep_satisfiable_with: if given, each candidate elimination is
            additionally vetted with a satisfiability check (WalkSAT
            seeded near this assignment, DPLL as the complete fallback);
            variables whose elimination makes the instance unsatisfiable
            are skipped.  Without it only the cheap empty-clause guard
            applies.  The strong check matters for rigid families: in a
            parity (XOR) instance, eliminating *any* chain variable turns
            its four XOR clauses into a contradiction.

    Raises:
        ChangeError: if no acceptable variable subset is found.
    """
    rng = _rng(rng)
    log = log or MutationLog()
    for _attempt in range(max_attempts):
        out = formula.copy()
        order = list(out.variables)
        rng.shuffle(order)
        chosen: list[int] = []
        for var in order:
            if len(chosen) == count:
                break
            trial = out.copy()
            trial.remove_variable(var)
            if trial.has_empty_clause():
                continue
            if keep_satisfiable_with is not None and not _is_satisfiable(
                trial, keep_satisfiable_with
            ):
                continue
            out = trial
            chosen.append(var)
        if len(chosen) == count:
            log.removed_variables.extend(chosen)
            return out, log
    raise ChangeError(
        f"could not eliminate {count} variables keeping the instance satisfiable"
    )


def _is_satisfiable(formula: CNFFormula, hint: Assignment | None = None) -> bool:
    """Satisfiability check used to validate EC trials.

    WalkSAT first (fast on satisfiable instances), DPLL for a complete
    verdict when WalkSAT's budget runs out.
    """
    from repro.sat.dpll import dpll_solve
    from repro.sat.walksat import walksat_solve

    if formula.has_empty_clause():
        return False
    if formula.num_vars <= 200:
        # Small instances: DPLL is fast and complete (rigid families make
        # UNSAT outcomes common here, where WalkSAT would burn its budget).
        return bool(dpll_solve(formula, polarity_hint=hint).satisfiable)
    w = walksat_solve(formula, max_flips=20_000, max_restarts=3, rng=0, initial=hint)
    if w.satisfiable:
        return True
    return bool(dpll_solve(formula).satisfiable)


def table2_trial(
    formula: CNFFormula,
    assignment: Assignment,
    rng: int | random.Random | None = None,
    num_eliminated: int = 3,
    num_added_clauses: int = 10,
    clause_width: int = 3,
    require_satisfiable: bool = True,
    max_attempts: int = 50,
) -> tuple[CNFFormula, MutationLog]:
    """One fast-EC trial as in Table 2: eliminate 3 variables, add 10 clauses.

    The added clauses avoid the eliminated variables.  With
    ``require_satisfiable`` (the paper's setup) trials that would make the
    instance unsatisfiable are redrawn.

    Raises:
        ChangeError: if no satisfiable trial is found in *max_attempts*.
    """
    rng = _rng(rng)
    vet = assignment if require_satisfiable else None
    for _attempt in range(max_attempts):
        out, log = eliminate_random_variables(
            formula, num_eliminated, rng, keep_satisfiable_with=vet
        )
        survivors = list(out.variables)
        w = min(clause_width, len(survivors))
        for _ in range(num_added_clauses):
            cl = random_clause(survivors, w, rng)
            out.add_clause(cl)
            log.added_clauses.append(cl)
        if not require_satisfiable or _is_satisfiable(out, assignment):
            return out, log
    raise ChangeError(
        f"no satisfiable table-2 trial found in {max_attempts} attempts"
    )


def table3_trial(
    formula: CNFFormula,
    assignment: Assignment,
    rng: int | random.Random | None = None,
    num_var_adds: int = 5,
    num_var_deletes: int = 5,
    num_clause_adds: int = 5,
    num_clause_deletes: int = 5,
    clause_width: int = 3,
    require_satisfiable: bool = True,
    max_attempts: int = 50,
) -> tuple[CNFFormula, MutationLog]:
    """One preserving-EC trial as in Table 3.

    Randomly adds and deletes five variables and five clauses "making sure
    that we did not make the instance non-satisfiable": deletions only
    loosen the instance; eliminations are drawn so no clause empties;
    added clauses are drawn satisfied by a reference witness; and the
    final instance is verified satisfiable (redrawing otherwise), because
    variable elimination alone can break satisfiability in ways the local
    checks cannot see.

    Raises:
        ChangeError: if no satisfiable trial is found in *max_attempts*.
    """
    rng = _rng(rng)
    vet = assignment if require_satisfiable else None
    for _attempt in range(max_attempts):
        out, log = remove_random_clauses(
            formula, min(num_clause_deletes, formula.num_clauses), rng
        )
        out, log = eliminate_random_variables(
            out, num_var_deletes, rng, keep_satisfiable_with=vet, log=log
        )
        witness = assignment.restricted_to(out.variables)
        out, log = add_fresh_variables(out, num_var_adds, log=log)
        for var in log.added_variables:
            witness[var] = bool(rng.getrandbits(1))
        survivors = list(out.variables)
        w = min(clause_width, len(survivors))
        ok = True
        for _ in range(num_clause_adds):
            for _draw in range(1000):
                cl = random_clause(survivors, w, rng)
                if cl.is_satisfied(witness):
                    break
            else:  # pragma: no cover
                ok = False
                break
            out.add_clause(cl)
            log.added_clauses.append(cl)
        if ok and (not require_satisfiable or _is_satisfiable(out, assignment)):
            return out, log
    raise ChangeError(
        f"no satisfiable table-3 trial found in {max_attempts} attempts"
    )
