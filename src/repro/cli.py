"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``solve FILE.cnf``                 — solve a DIMACS instance (``--engine
  ilp`` for the paper's ILP route, ``--engine portfolio --jobs N`` for the
  parallel portfolio engine, or any single solver by name: ``--engine
  cdcl|dpll|walksat|brute|ilp-exact|ilp-heuristic``); with ``--batch`` the
  FILE argument is a directory and every ``*.cnf`` inside is solved as one
  batch (one shared pool, fingerprint dedup across the batch); with
  ``--connect SOCKET`` the query is shipped to a running ``repro serve``
  daemon as packed wire bytes instead of being solved in-process;
  ``--stats-json PATH`` dumps the engine/cache counters for scripting;
* ``serve``                          — run the ``SolverService`` daemon on a
  local socket and/or a TCP endpoint (``--tcp HOST:PORT``, optionally guarded
  by ``--auth-token``/``$REPRO_AUTH_TOKEN``; ``--cache disk --cache-dir D``
  for the persistent verdict cache that survives restarts; ``--peer ADDR``
  pull-replicates that cache from other nodes; ``--record PATH`` records
  every handled request/response to a replayable trace; ``--max-requests N``
  and SIGTERM both trigger a graceful drain — in-flight requests finish, the
  recorder is flushed, then the daemon exits);
* ``route``                          — run the fingerprint-hash front-end over
  2-3 backend nodes: stateless solves route by fp-v2, named sessions pin to
  one node, dead nodes fail over along the hash ring (clients point
  ``--connect`` at it unchanged);
* ``cache export/import``            — move disk-cache entries as offline
  JSONL packet files (seeding a new node from a warm one, air-gapped
  replication);
* ``loadgen SCENARIO``               — generate a seeded EC request stream
  (see ``repro.workload.scenarios``) and drive it closed-loop (``--concurrency
  N``) or open-loop (``--rate R``) against an in-process service or a
  running daemon (``--connect``), optionally recording the stream
  (``--record``);
* ``replay TRACE.jsonl``             — re-execute a recorded trace and verify
  every response against the recorded one (status, fingerprint, model);
  exit code 1 on any mismatch;
* ``stats --connect SOCKET``         — one observability frame from a running
  daemon (windowed rps, hit rate, latency percentiles off the live
  log-bucketed histogram, queue depths, cache size); ``--watch`` subscribes
  to the daemon's push-stream and prints one frame per ``--interval``
  seconds; ``--json`` emits machine-readable frames either way;
* ``enable FILE.cnf``                — solve with enabling EC and report flexibility;
* ``fast FILE.cnf CHANGED.cnf``      — fast EC from FILE's solution to CHANGED;
* ``preserve FILE.cnf CHANGED.cnf``  — preserving EC between the two instances;
* ``bench {table1,table2,table3,engine,workload}`` — regenerate a paper
  table, the engine comparison, or the workload/load-driver benchmark.

Every ``solve`` route goes through the :class:`~repro.service.
SolverService` facade — the CLI builds a :class:`~repro.service.requests.
SolveRequest` and prints the :class:`~repro.service.requests.
SolveResponse`; it never touches a solver directly.

The two-file EC commands treat the first file as the original
specification (solved from scratch) and the second as the modified one.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.cnf.analysis import flexibility_report
from repro.cnf.dimacs import read_dimacs
from repro.core.enabling import EnablingOptions, enable_ec
from repro.core.fast import fast_ec
from repro.core.preserving import preserving_ec
from repro.errors import ConnectError, ReproError
from repro.ilp.status import SolveStatus
from repro.sat.encoding import encode_sat
from repro.ilp.solver import solve


def _solve_file(path: str, method: str, deadline: float | None = None,
                seed: int | None = None):
    """Solve a DIMACS file via the ILP route.

    Returns ``(formula, assignment)``; the assignment is None when the
    instance is *proven* unsatisfiable.

    Raises:
        ReproError: when the solver gave up undecided (budget statuses
            such as node_limit must never be reported as UNSAT).
    """
    formula = read_dimacs(path)
    encoding = encode_sat(formula)
    solution = solve(encoding.model, method=method, deadline=deadline, seed=seed)
    if solution.status is SolveStatus.INFEASIBLE:
        return formula, None
    if not solution.status.has_solution:
        raise ReproError(
            f"{path}: undecided within budget ({solution.status.value})"
        )
    return formula, encoding.decode(solution, default=False)


def _write_stats_json(path: str | None, stats: dict, **extra) -> None:
    """Dump an engine/cache counter snapshot (plus context) as JSON."""
    if not path:
        return
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({**stats, **extra}, fh, indent=2)
        fh.write("\n")


def _print_verdict(args, formula, response, engine_label: str) -> int:
    """Print one solve verdict in the CLI's stable format."""
    if response.status == "unsat":
        via = response.source or engine_label
        preposition = "via" if engine_label == "ilp" else "by"
        print(f"s UNSATISFIABLE ({preposition} {via})")
        return 1
    if response.status != "sat":
        raise ReproError(
            f"{args.file}: {engine_label} undecided within budget"
            + (f" ({response.detail})" if response.detail else "")
        )
    print(f"s SATISFIABLE ({formula.num_vars} vars, {formula.num_clauses} clauses)")
    if engine_label == "portfolio":
        print(f"c engine: portfolio, winner: {response.source}, "
              f"{response.wall_time:.3f}s")
    elif engine_label != "ilp":
        print(f"c engine: {engine_label}, {response.wall_time:.3f}s"
              + (f", {response.detail}" if response.detail else ""))
    print("v " + " ".join(str(l) for l in response.assignment.to_literals()) + " 0")
    return 0


def _cmd_solve(args) -> int:
    if args.batch:
        # The batch path always runs the portfolio engine (solve_many);
        # silently discarding an explicitly requested single solver would
        # be a lie, so reject the combination instead.
        if args.engine not in (None, "portfolio"):
            raise ReproError(
                "--batch always uses the portfolio engine; drop --engine "
                f"or pass --engine portfolio (got --engine {args.engine})"
            )
        if args.connect:
            raise ReproError("--batch and --connect cannot be combined")
        return _cmd_solve_batch(args)
    if args.connect:
        return _cmd_solve_connect(args)
    engine = args.engine or "ilp"

    from repro.engine.config import EngineConfig
    from repro.service.requests import SolveRequest
    from repro.service.service import SolverService

    formula = read_dimacs(args.file)
    with SolverService(EngineConfig(jobs=args.jobs)) as service:
        response = service.solve(SolveRequest(
            formula=formula, strategy=engine, method=args.method,
            deadline=args.deadline, seed=args.seed,
        ))
        _write_stats_json(
            args.stats_json, service.stats(),
            winner=response.winner, status=response.status,
            wall_time=response.wall_time,
        )
    # The ILP route keeps its historical undecided message (the ILP
    # status value is the interesting part for scripting).
    if engine == "ilp" and response.status not in ("sat", "unsat"):
        raise ReproError(
            f"{args.file}: undecided within budget ({response.detail})"
        )
    return _print_verdict(args, formula, response, engine)


def _cmd_solve_connect(args) -> int:
    """Ship the query to a running ``repro serve`` daemon.

    The instance crosses the socket as the packed kernel's raw wire
    bytes; the verdict comes back as a typed response and is printed in
    the same format as a local solve.  ``--stats-json`` dumps the
    *daemon's* counters, so a scripted client can watch the shared
    cache working across processes.
    """
    from repro.service.client import ServiceClient
    from repro.service.requests import SolveRequest

    engine = args.engine or "portfolio"
    formula = read_dimacs(args.file)
    # The socket timeout must outlive the solve budget: with a --deadline
    # the daemon answers within it (plus slack for transport/queueing);
    # without one the client blocks until the daemon answers.
    timeout = None if args.deadline is None else args.deadline + 30.0
    with ServiceClient(args.connect, timeout=timeout) as client:
        response = client.solve(SolveRequest(
            formula=formula, strategy=engine, method=args.method,
            deadline=args.deadline, seed=args.seed,
        ))
        _write_stats_json(
            args.stats_json, client.stats(),
            winner=response.winner, status=response.status,
            wall_time=response.wall_time,
        )
    return _print_verdict(args, formula, response, engine)


def _cmd_solve_batch(args) -> int:
    """Solve every ``*.cnf`` in a directory through one shared service.

    The batch rides ``SolverService.solve_many``: one shared (lazily
    started) pool, fingerprint dedup across the batch, and the verdict
    cache shared between instances.  Per-instance verdicts are printed
    one per line.  Exit codes follow the single-file convention: 0 when
    every instance is satisfiable, 1 when all were decided but at least
    one is proven UNSAT, 2 when any stayed undecided within its budget.
    """
    from pathlib import Path

    from repro.engine.config import EngineConfig
    from repro.service.service import SolverService

    directory = Path(args.file)
    if not directory.is_dir():
        raise ReproError(f"--batch expects a directory, got {args.file!r}")
    paths = sorted(directory.glob("*.cnf"))
    if not paths:
        raise ReproError(f"no .cnf files in {args.file!r}")
    formulas = [read_dimacs(str(p)) for p in paths]
    with SolverService(EngineConfig(jobs=args.jobs)) as service:
        responses = service.solve_many(
            formulas, deadline=args.deadline, seed=args.seed
        )
        undecided = 0
        unsat = 0
        for path, response in zip(paths, responses):
            if response.status == "sat":
                print(f"{path.name}: SATISFIABLE (via {response.source})")
            elif response.status == "unsat":
                unsat += 1
                print(f"{path.name}: UNSATISFIABLE (via {response.source})")
            else:
                undecided += 1
                print(f"{path.name}: UNDECIDED")
        stats = service.engine.stats
        print(
            f"c batch: {len(paths)} instances, {stats.races} races, "
            f"{stats.cache_hits} cache hits, {stats.revalidations} "
            f"revalidations, {stats.batch_dedups} batch dedups"
        )
        _write_stats_json(
            args.stats_json, service.stats(),
            winner=None,
            results=[
                {"file": p.name, "status": r.status, "source": r.source,
                 "winner": r.winner}
                for p, r in zip(paths, responses)
            ],
        )
    if undecided:
        return 2
    return 1 if unsat else 0


def _cmd_serve(args) -> int:
    """Run the ``SolverService`` daemon on Unix and/or TCP sockets."""
    import signal

    from repro.engine.config import EngineConfig
    from repro.service.daemon import ServiceDaemon
    from repro.service.service import SolverService

    if not args.socket and not args.tcp:
        raise ReproError("serve needs --socket PATH and/or --tcp HOST:PORT")
    try:
        extra = {}
        if args.quick_slice is not None:
            extra["quick_slice"] = args.quick_slice
        config = EngineConfig(
            jobs=args.jobs, cache=args.cache, cache_dir=args.cache_dir,
            cache_entries=args.cache_entries, chaos=args.chaos, **extra,
        )
    except ValueError as exc:
        raise ReproError(str(exc)) from None
    recorder = None
    if args.record:
        from repro.workload.trace import TraceRecorder

        recorder = TraceRecorder(
            args.record,
            meta={"source": "repro serve", "socket": args.socket or args.tcp},
        )
    auth_token = args.auth_token or os.environ.get("REPRO_AUTH_TOKEN") or None
    tracer = None
    if args.trace_log or args.trace_sample is not None:
        from repro.obs.tracing import Tracer

        # --trace-log without an explicit rate samples 1% of roots;
        # continued contexts (requests arriving with a trace header)
        # are always recorded regardless of the rate.
        sample = args.trace_sample if args.trace_sample is not None else 0.01
        tracer = Tracer(
            service=args.socket or args.tcp or "node",
            sample=sample,
            log_path=args.trace_log,
        )
    service = SolverService(config, recorder=recorder)
    syncer = None
    if args.peer:
        if args.cache != "disk":
            raise ReproError(
                "--peer needs --cache disk: anti-entropy sync replicates "
                "the persistent verdict cache"
            )
        from repro.cluster.sync import CacheSyncer

        syncer = CacheSyncer(
            service.engine.cache,
            args.peer,
            interval=args.sync_interval,
            auth_token=auth_token,
            metrics=service.metrics,
        )
    daemon = ServiceDaemon(
        args.socket or None,
        service,
        log_path=args.log_file,
        max_requests=args.max_requests,
        max_frame_bytes=args.max_frame_bytes,
        tcp_address=args.tcp,
        auth_token=auth_token,
        syncer=syncer,
        tracer=tracer,
    )
    daemon.bind()
    try:
        # Graceful drain on SIGTERM: stop accepting, finish in-flight
        # requests, flush the recorder, exit 0 (how replay runs against
        # a recorded daemon end cleanly under process supervisors).
        signal.signal(signal.SIGTERM, lambda _sig, _frm: daemon.shutdown())
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass
    # One line per endpoint, printed after bind so an ephemeral --tcp
    # port (HOST:0) comes out resolved — orchestration scripts parse it.
    for address in daemon.addresses:
        print(f"repro serve: listening on {address}", flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        daemon.shutdown()
    return 0


def _cmd_route(args) -> int:
    """Run the fingerprint-hash router over backend nodes."""
    import signal

    from repro.cluster.router import RouterDaemon

    auth_token = args.auth_token or os.environ.get("REPRO_AUTH_TOKEN") or None
    router = RouterDaemon(
        args.listen,
        args.node,
        auth_token=auth_token,
        node_token=args.node_token or auth_token,
        log_path=args.log_file,
        health_interval=args.health_interval,
        retries=args.retries,
        trace_log=args.trace_log,
        trace_sample=args.trace_sample if args.trace_sample is not None else 0.0,
    )
    router.bind()
    try:
        signal.signal(signal.SIGTERM, lambda _sig, _frm: router.shutdown())
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass
    print(f"repro route: listening on {router.address}", flush=True)
    for node in router.ring.nodes:
        print(f"repro route: node {node}", flush=True)
    try:
        router.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        router.shutdown()
    return 0


def _cmd_cache(args) -> int:
    """Offline cache replication: export/import JSONL packet files."""
    from repro.cluster.sync import export_packet, import_packet
    from repro.engine.diskcache import DiskCache

    cache = DiskCache(args.cache_dir, max_entries=args.cache_entries)
    if args.action == "export":
        written = export_packet(cache, args.packet, since=args.since)
        print(
            f"repro cache: exported {written} entries -> {args.packet} "
            f"(cursor {cache.sync_cursor()})"
        )
        return 0
    seen, merged = import_packet(cache, args.packet)
    print(
        f"repro cache: imported {merged} new of {seen} entries "
        f"from {args.packet}"
    )
    return 0


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.1f}ms"


def _print_load_report(report, label: str) -> None:
    """Print one load run in the CLI's stable format."""
    lat = report.latency
    print(
        f"{label}: {report.events} events in {report.wall_time:.3f}s "
        f"({report.throughput:.1f} ev/s, mode={report.mode} "
        f"c={report.concurrency}), errors {report.errors}"
    )
    print(
        f"c latency: mean {_ms(lat['mean'])} p50 {_ms(lat['p50'])} "
        f"p90 {_ms(lat['p90'])} p99 {_ms(lat['p99'])} max {_ms(lat['max'])}"
    )
    if report.lateness is not None:
        print(
            f"c lateness: p50 {_ms(report.lateness['p50'])} "
            f"p99 {_ms(report.lateness['p99'])} max {_ms(report.lateness['max'])}"
        )
    if report.counters:
        engine = report.counters.get("engine", {})
        print(
            "c counters: "
            f"{engine.get('solves', 0)} solves, "
            f"{engine.get('races', 0)} races, "
            f"{engine.get('cache_hits', 0)} cache hits, "
            f"{engine.get('revalidations', 0)} revalidations, "
            f"{engine.get('batch_dedups', 0)} batch dedups, "
            f"{engine.get('transport_bytes', 0)} transport bytes"
        )
    for line in report.error_detail:
        print(f"c error: {line}")


def _write_report_json(path: str | None, report) -> None:
    if not path:
        return
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report.to_dict(), fh, indent=2)
        fh.write("\n")


def _cmd_loadgen(args) -> int:
    """Generate a scenario stream and drive it at load."""
    from repro.workload import (
        build_scenario,
        client_factory,
        inprocess_factory,
        run_events,
        summarize,
        write_trace_from_run,
    )

    events = build_scenario(
        args.scenario, seed=args.seed, tenants=args.tenants, changes=args.changes
    )
    mode = "open" if args.rate is not None else args.mode
    if mode == "open" and args.rate is None:
        raise ReproError("loadgen --mode open needs --rate (events/second)")

    def drive(factory, stats_target):
        before = stats_target.stats()
        results, wall = run_events(
            events, factory, mode=mode, concurrency=args.concurrency,
            rate=args.rate, seed=args.seed,
        )
        after = stats_target.stats()
        return results, summarize(
            results, wall, scenario=args.scenario, mode=mode,
            concurrency=args.concurrency, stats_before=before, stats_after=after,
        )

    if args.connect:
        from repro.service.client import ServiceClient

        with ServiceClient(args.connect) as stats_client:
            results, report = drive(client_factory(args.connect), stats_client)
    else:
        from repro.engine.config import EngineConfig
        from repro.service.service import SolverService

        with SolverService(EngineConfig(jobs=args.jobs)) as service:
            factory = inprocess_factory(service)
            results, report = drive(factory, factory())
    if args.record:
        written = write_trace_from_run(
            args.record, events, results,
            meta={"scenario": args.scenario, "seed": args.seed,
                  "tenants": args.tenants, "changes": args.changes},
        )
        print(f"c recorded {written} events -> {args.record}")
    _print_load_report(report, f"loadgen {args.scenario}")
    _write_report_json(args.out, report)
    return 0 if report.errors == 0 else 1


def _cmd_replay(args) -> int:
    """Re-execute a recorded trace and verify it reproduced itself."""
    from repro.workload import client_factory, inprocess_factory, read_trace, replay_trace

    trace = read_trace(args.trace)
    mode = "open" if (args.rate is not None or args.mode == "open") else "closed"
    kwargs = dict(
        mode=mode, concurrency=args.concurrency, rate=args.rate,
        speed=args.speed, verify=not args.no_verify,
        batch_segments=args.batch_segments, seed=args.seed,
    )
    if args.connect:
        from repro.service.client import ServiceClient

        with ServiceClient(args.connect) as stats_client:
            report = replay_trace(
                trace, client_factory(args.connect),
                stats_target=stats_client, **kwargs,
            )
    else:
        from repro.engine.config import EngineConfig
        from repro.service.service import SolverService

        with SolverService(EngineConfig(jobs=args.jobs)) as service:
            factory = inprocess_factory(service)
            report = replay_trace(
                trace, factory, stats_target=factory(), **kwargs
            )
    _print_load_report(report, f"replay {args.trace}")
    if not args.no_verify:
        print(
            f"c verify: {report.mismatches} mismatches over "
            f"{len(trace)} records"
        )
        for line in report.mismatch_detail:
            print(f"c mismatch: {line}")
    _write_report_json(args.out, report)
    failed = report.errors > 0 or (not args.no_verify and report.mismatches > 0)
    return 1 if failed else 0


def _frame_line(frame: dict) -> str:
    """One metric frame as a fixed-width live line (``stats --watch``)."""
    lat = frame.get("latency", {})
    return (
        f"{frame.get('uptime', 0.0):8.1f}s  "
        f"rps {frame.get('rps', 0.0):7.1f}  "
        f"p50 {_ms(lat.get('p50', 0.0)):>9}  "
        f"p99 {_ms(lat.get('p99', 0.0)):>9}  "
        f"hit {frame.get('hit_rate', 0.0) * 100:5.1f}%  "
        f"inflight {frame.get('inflight', 0):3.0f}  "
        f"queued {frame.get('queued', 0):3.0f}  "
        f"sessions {frame.get('sessions', 0):3.0f}  "
        f"errors {frame.get('errors', 0):3.0f}"
    )


def _cmd_stats(args) -> int:
    """One-shot or streaming metrics from a running daemon."""
    from repro.service.client import ServiceClient

    if args.watch:
        # A dedicated connection: the watch generator owns its receive
        # side for the whole stream.
        with ServiceClient(args.connect, timeout=30.0) as client:
            try:
                for frame in client.watch(
                    interval=args.interval, count=args.frames
                ):
                    if args.json:
                        print(json.dumps(frame), flush=True)
                    else:
                        print(_frame_line(frame), flush=True)
            except KeyboardInterrupt:  # pragma: no cover - interactive only
                pass
        return 0
    with ServiceClient(args.connect, timeout=30.0) as client:
        frame = client.stats_frame(window=args.window)
        try:
            health = client.health()
        except ReproError:
            health = None          # older daemon without the health op
        cluster = None
        if health is not None and health.get("router"):
            # Only a router answers cluster_health; asking a plain node
            # would count an unknown-op error against it.
            try:
                cluster = client.cluster_health()
            except ReproError:
                cluster = None
    if args.json:
        if health is not None:
            frame = dict(frame, health=health)
        if cluster is not None:
            frame = dict(frame, cluster=cluster)
        print(json.dumps(frame, indent=2))
        return 0
    lat = frame.get("latency", {})
    totals = frame.get("totals", {})
    print(
        f"daemon up {frame.get('uptime', 0.0):.1f}s, window "
        f"{frame.get('window', 0.0):.0f}s: {frame.get('rps', 0.0):.1f} rps, "
        f"hit rate {frame.get('hit_rate', 0.0) * 100:.1f}%"
    )
    print(
        f"c window: {frame.get('requests', 0):.0f} requests, "
        f"{frame.get('solves', 0):.0f} solves, "
        f"{frame.get('races', 0):.0f} races, "
        f"{frame.get('cache_hits', 0):.0f} cache hits, "
        f"{frame.get('errors', 0):.0f} errors"
    )
    print(
        f"c effort (window): {frame.get('propagations', 0):.0f} propagations, "
        f"{frame.get('conflicts', 0):.0f} conflicts, "
        f"{frame.get('restarts', 0):.0f} restarts"
    )
    print(
        f"c latency (lifetime, {lat.get('count', 0)} samples): "
        f"mean {_ms(lat.get('mean', 0.0))} p50 {_ms(lat.get('p50', 0.0))} "
        f"p90 {_ms(lat.get('p90', 0.0))} p99 {_ms(lat.get('p99', 0.0))} "
        f"max {_ms(lat.get('max', 0.0))}"
    )
    print(
        f"c gauges: inflight {frame.get('inflight', 0):.0f}, "
        f"queued {frame.get('queued', 0):.0f}, "
        f"sessions {frame.get('sessions', 0):.0f}"
    )
    print(
        f"c totals: {totals.get('requests', 0):.0f} requests, "
        f"{totals.get('solves', 0):.0f} solves since daemon start"
    )
    if cluster is not None:
        router = cluster.get("router", {})
        nodes = cluster.get("nodes", {})
        alive = sum(1 for s in nodes.values() if s.get("alive"))
        print(
            f"c cluster: {alive}/{len(nodes)} nodes up, "
            f"{router.get('routed', 0)} routed, "
            f"{router.get('failovers', 0)} failovers, "
            f"{router.get('unrouted', 0)} unrouted, "
            f"{router.get('auth_rejects', 0)} auth rejects"
        )
        for address in sorted(nodes):
            state = nodes[address]
            flags = "up" if state.get("alive") else "DOWN"
            if state.get("degraded"):
                flags += " DEGRADED"
            print(
                f"c node {address}: {flags}, "
                f"pool gen {state.get('generation')}, "
                f"sync cursor {state.get('sync_cursor')}"
                + (
                    f", last error: {state.get('last_error')}"
                    if state.get("last_error")
                    else ""
                )
            )
    elif health is not None:
        engine = health.get("engine", {})
        pool = engine.get("pool", {})
        cache = engine.get("cache", {})
        degraded = " DEGRADED" if cache.get("degraded") else ""
        print(
            f"c health: pool gen {pool.get('generation', 0)}, "
            f"{pool.get('solo_fallbacks', 0)} solo fallbacks, "
            f"cache errors {cache.get('errors', 0)}{degraded}, "
            f"daemon errors {health.get('errors', 0):.0f}"
            + (", draining" if health.get("draining") else "")
        )
    return 0


def _cmd_trace(args) -> int:
    """Join span JSONL logs into trace trees and print waterfalls."""
    from repro.obs.tracing import format_trace, group_traces, load_spans

    spans = load_spans(args.logs)
    traces = group_traces(spans)
    if args.trace_id:
        traces = {
            t: s for t, s in traces.items() if t.startswith(args.trace_id)
        }
        if not traces:
            print(f"error: no trace matching {args.trace_id!r}",
                  file=sys.stderr)
            return 1
    if not traces:
        print("error: no span records in the given logs", file=sys.stderr)
        return 1
    # Most recent first (by each trace's last span); cap unless a
    # specific trace was asked for.
    ordered = sorted(
        traces.items(),
        key=lambda kv: max(s.get("mono") or 0.0 for s in kv[1]),
        reverse=True,
    )
    dropped = 0
    if not args.trace_id and args.limit and len(ordered) > args.limit:
        dropped = len(ordered) - args.limit
        ordered = ordered[: args.limit]
    if args.json:
        for trace_id, bucket in ordered:
            print(json.dumps({"trace": trace_id, "spans": bucket}))
        return 0
    for trace_id, bucket in ordered:
        for line in format_trace(bucket):
            print(line)
        print()
    if dropped:
        print(f"c {dropped} older trace(s) not shown (raise --limit)")
    return 0


def _cmd_enable(args) -> int:
    formula = read_dimacs(args.file)
    options = EnablingOptions(mode=args.mode, support=args.support, k=args.k)
    result = enable_ec(formula, options, method=args.method)
    if not result.succeeded:
        print("s UNSATISFIABLE (under enabling constraints)")
        return 1
    report = flexibility_report(formula, result.assignment, with_robustness=False)
    print(f"s SATISFIABLE (enabled, {options.mode}/{options.support})")
    print(f"c 2-satisfied fraction: {report.fraction_2_satisfied:.3f}")
    print(f"c fragile clauses:      {report.fragile_clauses}")
    print("v " + " ".join(str(l) for l in result.assignment.to_literals()) + " 0")
    return 0


def _cmd_fast(args) -> int:
    _original_formula, assignment = _solve_file(
        args.original, args.method, deadline=args.deadline, seed=args.seed
    )
    if assignment is None:
        raise ReproError(f"{args.original}: original instance is unsatisfiable")
    modified = read_dimacs(args.modified)
    result = fast_ec(
        modified, assignment, method=args.method,
        deadline=args.deadline, seed=args.seed,
    )
    if not result.succeeded:
        print("s UNSATISFIABLE (modified instance)")
        return 1
    print(f"c re-solved {result.instance.num_vars} vars / "
          f"{result.instance.num_clauses} clauses"
          + (" (fallback)" if result.fell_back else ""))
    print("v " + " ".join(str(l) for l in result.assignment.to_literals()) + " 0")
    return 0


def _cmd_preserve(args) -> int:
    _original_formula, assignment = _solve_file(
        args.original, args.method, deadline=args.deadline, seed=args.seed
    )
    if assignment is None:
        raise ReproError(f"{args.original}: original instance is unsatisfiable")
    modified = read_dimacs(args.modified)
    result = preserving_ec(
        modified, assignment, method=args.method,
        deadline=args.deadline, seed=args.seed,
    )
    if not result.succeeded:
        print("s UNSATISFIABLE (modified instance)")
        return 1
    print(f"c preserved {result.preserved_count}/{result.comparable_variables} "
          f"({result.preserved_fraction:.1%})")
    print("v " + " ".join(str(l) for l in result.assignment.to_literals()) + " 0")
    return 0


def _cmd_bench(args) -> int:
    import importlib

    module = importlib.import_module(f"repro.bench.{args.table}")
    forwarded = []
    if args.tier:
        forwarded += ["--tier", args.tier]
    if args.block:
        forwarded += ["--block", args.block]
    return module.main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ILP-based engineering change (DAC 2002 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    from repro.engine.adapters import ADAPTERS

    p = sub.add_parser("solve", help="solve a DIMACS CNF (ILP route, portfolio engine, or one named solver)")
    p.add_argument("file")
    p.add_argument("--method", default="exact", choices=("exact", "heuristic", "auto"),
                   help="ILP method (only with --engine ilp)")
    p.add_argument("--engine", default=None,
                   choices=("ilp", "portfolio", *sorted(ADAPTERS)),
                   help="'ilp' = the paper's route (the default); "
                        "'portfolio' = parallel engine; any other name runs "
                        "that single solver (incompatible with --batch, "
                        "which always races the portfolio)")
    p.add_argument("--jobs", type=int, default=None,
                   help="portfolio process-pool width (default: auto)")
    p.add_argument("--batch", action="store_true",
                   help="treat FILE as a directory and solve every *.cnf "
                        "in it as one batch through the portfolio engine "
                        "(one shared pool, fingerprint dedup)")
    p.add_argument("--seed", type=int, default=None,
                   help="race seed for randomized solvers")
    p.add_argument("--deadline", type=float, default=None,
                   help="wall-clock budget in seconds")
    p.add_argument("--connect", metavar="ADDR", default=None,
                   help="route the query to a running `repro serve` daemon "
                        "or `repro route` front-end at this address — a "
                        "Unix socket path, unix://PATH, or tcp://HOST:PORT "
                        "(instance ships as packed wire bytes; default "
                        "strategy becomes 'portfolio')")
    p.add_argument("--stats-json", metavar="PATH", default=None,
                   help="dump the engine/cache counters (hits, misses, "
                        "batch dedups, transport bytes, winner) as JSON")
    p.set_defaults(func=_cmd_solve)

    p = sub.add_parser(
        "serve",
        help="run the SolverService daemon on a local socket "
             "(see `solve --connect`)",
    )
    p.add_argument("--socket", default=None,
                   help="Unix socket path to listen on (optional when "
                        "--tcp is given)")
    p.add_argument("--tcp", metavar="HOST:PORT", default=None,
                   help="also (or only) listen on this TCP endpoint — "
                        "same wire protocol, reachable across boxes; "
                        "port 0 binds an ephemeral port and prints it")
    p.add_argument("--auth-token", metavar="TOKEN", default=None,
                   help="require a per-connection token handshake before "
                        "the first op (default: $REPRO_AUTH_TOKEN; unset "
                        "= open)")
    p.add_argument("--peer", metavar="ADDR", action="append", default=None,
                   help="pull-replicate the disk cache from this peer "
                        "daemon (repeatable; needs --cache disk; peers "
                        "share the auth token)")
    p.add_argument("--sync-interval", type=float, default=2.0,
                   help="seconds between anti-entropy pull rounds "
                        "(default 2.0)")
    p.add_argument("--jobs", type=int, default=None,
                   help="portfolio process-pool width (default: auto)")
    p.add_argument("--quick-slice", type=float, default=None,
                   help="in-process lead-solver budget in seconds before "
                        "fan-out; 0 sends every uncached solve straight "
                        "to the worker pool (default: engine default)")
    p.add_argument("--cache", default="memory",
                   choices=("memory", "disk", "none"),
                   help="verdict cache backend ('disk' persists across "
                        "restarts and processes; requires --cache-dir)")
    p.add_argument("--cache-dir", default=None,
                   help="directory for the disk cache backend")
    p.add_argument("--cache-entries", type=int, default=4096,
                   help="cache capacity before LRU eviction")
    p.add_argument("--log-file", default=None,
                   help="append one line per handled request here")
    p.add_argument("--record", metavar="PATH", default=None,
                   help="record every handled request/response (with "
                        "timing) to this JSONL trace (an existing file "
                        "is overwritten); replay it with `repro replay`")
    p.add_argument("--max-requests", type=int, default=None,
                   help="gracefully drain and exit after this many "
                        "handled requests (pings and health excluded)")
    p.add_argument("--max-frame-bytes", type=int, default=None,
                   help="per-daemon cap on incoming wire frame sizes "
                        "(default: the wire module's 512 MiB sanity cap)")
    p.add_argument("--chaos", metavar="SPEC", default=None,
                   help="fault-injection plan, e.g. "
                        "'seed=42;worker.kill:p=0.1,count=2;wire.drop:p=0.05' "
                        "— deterministic per seed, propagated to pool "
                        "workers (testing only; see repro.faults)")
    p.add_argument("--trace-log", metavar="PATH", default=None,
                   help="append one JSONL span record per traced request "
                        "stage here; reconstruct with `repro trace`")
    p.add_argument("--trace-sample", type=float, default=None,
                   help="root sampling probability for requests arriving "
                        "without a trace context (default 0.01 when "
                        "--trace-log is given, else tracing stays off; "
                        "requests that arrive traced are always recorded)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "route",
        help="run the fingerprint-hash front-end over 2-3 backend "
             "nodes (clients --connect here unchanged)",
    )
    p.add_argument("--listen", metavar="ADDR", required=True,
                   help="front-end endpoint (unix://PATH, tcp://HOST:PORT, "
                        "or a bare socket path; tcp port 0 = ephemeral)")
    p.add_argument("--node", metavar="ADDR", action="append", required=True,
                   help="backend `repro serve` endpoint (repeat per node)")
    p.add_argument("--auth-token", metavar="TOKEN", default=None,
                   help="token clients must present to the router "
                        "(default: $REPRO_AUTH_TOKEN; unset = open)")
    p.add_argument("--node-token", metavar="TOKEN", default=None,
                   help="token the router presents to nodes "
                        "(default: same as --auth-token)")
    p.add_argument("--health-interval", type=float, default=2.0,
                   help="seconds between node health probes (default 2.0)")
    p.add_argument("--retries", type=int, default=2,
                   help="transport retries per node before failing over")
    p.add_argument("--log-file", default=None,
                   help="append one line per routed request here")
    p.add_argument("--trace-log", metavar="PATH", default=None,
                   help="append one JSONL record per router hop span "
                        "here; join with node logs via `repro trace`")
    p.add_argument("--trace-sample", type=float, default=None,
                   help="root sampling probability for untraced requests "
                        "(default 0: the router only continues traces "
                        "clients start)")
    p.set_defaults(func=_cmd_route)

    p = sub.add_parser(
        "cache",
        help="offline cache replication: export/import packet files",
    )
    p.add_argument("action", choices=("export", "import"),
                   help="export entries to a packet, or merge one in")
    p.add_argument("packet", help="JSONL packet file path")
    p.add_argument("--cache-dir", required=True,
                   help="the disk cache directory to export from / "
                        "import into")
    p.add_argument("--cache-entries", type=int, default=4096,
                   help="capacity of the target cache (import sweeps "
                        "past it, oldest first)")
    p.add_argument("--since", type=int, default=0,
                   help="export only entries past this sync cursor "
                        "(default 0 = everything)")
    p.set_defaults(func=_cmd_cache)

    from repro.workload.scenarios import SCENARIOS

    p = sub.add_parser(
        "loadgen",
        help="generate a seeded EC request stream and drive it at load "
             "(closed-loop workers or open-loop arrivals)",
    )
    p.add_argument("scenario", choices=sorted(SCENARIOS),
                   help="scenario generator (see repro.workload.scenarios)")
    p.add_argument("--tenants", type=int, default=4,
                   help="concurrent EC sessions in the stream")
    p.add_argument("--changes", type=int, default=6,
                   help="engineering changes per session")
    p.add_argument("--seed", type=int, default=0,
                   help="stream seed (same seed => identical stream)")
    p.add_argument("--concurrency", type=int, default=1,
                   help="closed-loop worker count")
    p.add_argument("--mode", choices=("closed", "open"), default="closed",
                   help="closed-loop (completion-driven) or open-loop "
                        "(schedule-driven) load")
    p.add_argument("--rate", type=float, default=None,
                   help="open-loop Poisson arrival rate in events/second "
                        "(implies --mode open)")
    p.add_argument("--connect", metavar="ADDR", default=None,
                   help="drive a running `repro serve` daemon or `repro "
                        "route` front-end (Unix path, unix://PATH, or "
                        "tcp://HOST:PORT) instead of an in-process service")
    p.add_argument("--jobs", type=int, default=None,
                   help="in-process pool width (ignored with --connect)")
    p.add_argument("--record", metavar="PATH", default=None,
                   help="record the executed stream as a replayable trace "
                        "(an existing file is overwritten)")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="write the JSON load report here")
    p.set_defaults(func=_cmd_loadgen)

    p = sub.add_parser(
        "replay",
        help="re-execute a recorded trace and verify every response "
             "against the recorded one",
    )
    p.add_argument("trace", help="a trace written by --record")
    p.add_argument("--connect", metavar="ADDR", default=None,
                   help="replay against a running daemon or router "
                        "(Unix path, unix://PATH, or tcp://HOST:PORT) "
                        "instead of an in-process service")
    p.add_argument("--jobs", type=int, default=None,
                   help="in-process pool width (ignored with --connect)")
    p.add_argument("--concurrency", type=int, default=1,
                   help="closed-loop worker count")
    p.add_argument("--mode", choices=("closed", "open"), default="closed",
                   help="closed-loop replay, or open-loop on the trace's "
                        "recorded arrival offsets")
    p.add_argument("--rate", type=float, default=None,
                   help="override the recorded offsets with a Poisson "
                        "arrival rate (implies --mode open)")
    p.add_argument("--speed", type=float, default=1.0,
                   help="time-compression for recorded offsets (open "
                        "mode; 2.0 = twice as fast)")
    p.add_argument("--batch-segments", action="store_true",
                   help="coalesce consecutive stateless solves into "
                        "wire-level solve_many batches")
    p.add_argument("--no-verify", action="store_true",
                   help="skip response verification (pure load replay)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for --rate arrival schedules")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="write the JSON replay report here")
    p.set_defaults(func=_cmd_replay)

    p = sub.add_parser(
        "stats",
        help="observability frames from a running daemon "
             "(one-shot, or --watch for the live push-stream)",
    )
    p.add_argument("--connect", metavar="ADDR", required=True,
                   help="the daemon's (or router's) address: Unix path, "
                        "unix://PATH, or tcp://HOST:PORT")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable frames (one JSON object "
                        "one-shot; one JSON line per frame with --watch)")
    p.add_argument("--watch", action="store_true",
                   help="subscribe to the daemon's metric push-stream "
                        "and print one line per interval (Ctrl-C to stop)")
    p.add_argument("--interval", type=float, default=1.0,
                   help="seconds between watch frames (default 1.0)")
    p.add_argument("--frames", type=int, default=None,
                   help="stop after this many watch frames "
                        "(default: until Ctrl-C or daemon drain)")
    p.add_argument("--window", type=float, default=None,
                   help="trailing seconds folded into one-shot rates "
                        "(default 60)")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser(
        "trace",
        help="reconstruct distributed trace trees from span JSONL logs "
             "(written with serve/route --trace-log)",
    )
    p.add_argument("logs", nargs="+",
                   help="span JSONL logs to join — any mix of client, "
                        "router, and node files")
    p.add_argument("--trace-id", metavar="PREFIX", default=None,
                   help="show only the trace(s) whose id starts with this")
    p.add_argument("--json", action="store_true",
                   help="one JSON object per trace (id + raw spans) "
                        "instead of the waterfall rendering")
    p.add_argument("--limit", type=int, default=10,
                   help="most-recent traces to render (default 10; "
                        "ignored with --trace-id)")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("enable", help="solve with enabling EC")
    p.add_argument("file")
    p.add_argument("--mode", default="objective", choices=("constraints", "objective"))
    p.add_argument("--support", default="chained", choices=("acyclic", "chained"))
    p.add_argument("--k", type=int, default=2)
    p.add_argument("--method", default="exact", choices=("exact", "heuristic", "auto"))
    p.set_defaults(func=_cmd_enable)

    p = sub.add_parser("fast", help="fast EC between two instances")
    p.add_argument("original")
    p.add_argument("modified")
    p.add_argument("--method", default="exact", choices=("exact", "heuristic", "auto"))
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--deadline", type=float, default=None,
                   help="wall-clock budget in seconds per solve")
    p.set_defaults(func=_cmd_fast)

    p = sub.add_parser("preserve", help="preserving EC between two instances")
    p.add_argument("original")
    p.add_argument("modified")
    p.add_argument("--method", default="exact", choices=("exact", "heuristic", "auto"))
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--deadline", type=float, default=None,
                   help="wall-clock budget in seconds per solve")
    p.set_defaults(func=_cmd_preserve)

    p = sub.add_parser("bench", help="regenerate a paper table or the engine comparison")
    p.add_argument("table", choices=("table1", "table2", "table3", "engine", "workload"))
    p.add_argument("--tier", choices=("ci", "paper"), default=None)
    p.add_argument("--block", choices=("small", "large", "all"), default=None)
    p.set_defaults(func=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # A downstream consumer (e.g. `| head`) closed stdout after a
        # successful solve; that is not an error.  Point stdout at
        # /dev/null so the interpreter's exit flush stays quiet.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except ConnectError as exc:
        # A missing/dead daemon socket is an operational condition, not a
        # crash: one line on stderr, exit 1 (the client already spent its
        # connect-retry budget, which rides out a daemon mid-restart).
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
