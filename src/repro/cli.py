"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``solve FILE.cnf``                 — solve a DIMACS instance via the ILP route;
* ``enable FILE.cnf``                — solve with enabling EC and report flexibility;
* ``fast FILE.cnf CHANGED.cnf``      — fast EC from FILE's solution to CHANGED;
* ``preserve FILE.cnf CHANGED.cnf``  — preserving EC between the two instances;
* ``bench {table1,table2,table3}``   — regenerate a paper table.

The two-file EC commands treat the first file as the original
specification (solved from scratch) and the second as the modified one.
"""

from __future__ import annotations

import argparse
import sys

from repro.cnf.analysis import flexibility_report
from repro.cnf.dimacs import read_dimacs
from repro.core.enabling import EnablingOptions, enable_ec
from repro.core.fast import fast_ec
from repro.core.preserving import preserving_ec
from repro.errors import ReproError
from repro.sat.encoding import encode_sat
from repro.ilp.solver import solve


def _solve_file(path: str, method: str):
    formula = read_dimacs(path)
    encoding = encode_sat(formula)
    solution = solve(encoding.model, method=method)
    if not solution.status.has_solution:
        raise ReproError(f"{path}: unsatisfiable ({solution.status.value})")
    return formula, encoding.decode(solution, default=False)


def _cmd_solve(args) -> int:
    formula, assignment = _solve_file(args.file, args.method)
    print(f"s SATISFIABLE ({formula.num_vars} vars, {formula.num_clauses} clauses)")
    print("v " + " ".join(str(l) for l in assignment.to_literals()) + " 0")
    return 0


def _cmd_enable(args) -> int:
    formula = read_dimacs(args.file)
    options = EnablingOptions(mode=args.mode, support=args.support, k=args.k)
    result = enable_ec(formula, options, method=args.method)
    if not result.succeeded:
        print("s UNSATISFIABLE (under enabling constraints)")
        return 1
    report = flexibility_report(formula, result.assignment, with_robustness=False)
    print(f"s SATISFIABLE (enabled, {options.mode}/{options.support})")
    print(f"c 2-satisfied fraction: {report.fraction_2_satisfied:.3f}")
    print(f"c fragile clauses:      {report.fragile_clauses}")
    print("v " + " ".join(str(l) for l in result.assignment.to_literals()) + " 0")
    return 0


def _cmd_fast(args) -> int:
    _original_formula, assignment = _solve_file(args.original, args.method)
    modified = read_dimacs(args.modified)
    result = fast_ec(modified, assignment, method=args.method)
    if not result.succeeded:
        print("s UNSATISFIABLE (modified instance)")
        return 1
    print(f"c re-solved {result.instance.num_vars} vars / "
          f"{result.instance.num_clauses} clauses"
          + (" (fallback)" if result.fell_back else ""))
    print("v " + " ".join(str(l) for l in result.assignment.to_literals()) + " 0")
    return 0


def _cmd_preserve(args) -> int:
    _original_formula, assignment = _solve_file(args.original, args.method)
    modified = read_dimacs(args.modified)
    result = preserving_ec(modified, assignment, method=args.method)
    if not result.succeeded:
        print("s UNSATISFIABLE (modified instance)")
        return 1
    print(f"c preserved {result.preserved_count}/{result.comparable_variables} "
          f"({result.preserved_fraction:.1%})")
    print("v " + " ".join(str(l) for l in result.assignment.to_literals()) + " 0")
    return 0


def _cmd_bench(args) -> int:
    import importlib

    module = importlib.import_module(f"repro.bench.{args.table}")
    forwarded = []
    if args.tier:
        forwarded += ["--tier", args.tier]
    if args.block:
        forwarded += ["--block", args.block]
    return module.main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ILP-based engineering change (DAC 2002 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("solve", help="solve a DIMACS CNF via the ILP route")
    p.add_argument("file")
    p.add_argument("--method", default="exact", choices=("exact", "heuristic", "auto"))
    p.set_defaults(func=_cmd_solve)

    p = sub.add_parser("enable", help="solve with enabling EC")
    p.add_argument("file")
    p.add_argument("--mode", default="objective", choices=("constraints", "objective"))
    p.add_argument("--support", default="chained", choices=("acyclic", "chained"))
    p.add_argument("--k", type=int, default=2)
    p.add_argument("--method", default="exact", choices=("exact", "heuristic", "auto"))
    p.set_defaults(func=_cmd_enable)

    p = sub.add_parser("fast", help="fast EC between two instances")
    p.add_argument("original")
    p.add_argument("modified")
    p.add_argument("--method", default="exact", choices=("exact", "heuristic", "auto"))
    p.set_defaults(func=_cmd_fast)

    p = sub.add_parser("preserve", help="preserving EC between two instances")
    p.add_argument("original")
    p.add_argument("modified")
    p.add_argument("--method", default="exact", choices=("exact", "heuristic", "auto"))
    p.set_defaults(func=_cmd_preserve)

    p = sub.add_parser("bench", help="regenerate a paper table")
    p.add_argument("table", choices=("table1", "table2", "table3"))
    p.add_argument("--tier", choices=("ci", "paper"), default=None)
    p.add_argument("--block", choices=("small", "large", "all"), default=None)
    p.set_defaults(func=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
