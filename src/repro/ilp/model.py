"""The ILP model container.

An :class:`ILPModel` is the paper's ``max{cx : Ax <= b, x in B^n}`` (eq. 2,
generalized to mixed senses, integer and continuous variables).  It owns
variables and constraints, converts itself to the matrix form the solvers
consume, and can verify candidate solutions.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np
import scipy.sparse as sp

from repro.errors import ModelError
from repro.ilp.constraint import Constraint, Sense
from repro.ilp.expr import LinExpr, Operand
from repro.ilp.variable import VarType, Variable


class ObjectiveSense:
    """String constants for the optimization direction."""

    MAXIMIZE = "max"
    MINIMIZE = "min"


class ILPModel:
    """A (mixed) integer linear program.

    Example::

        m = ILPModel("toy")
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add_constraint(x + y <= 1, name="pack")
        m.set_objective(x + 2 * y, sense="max")
    """

    def __init__(self, name: str = "model"):
        self.name = name
        self._variables: list[Variable] = []
        self._by_name: dict[str, Variable] = {}
        self._constraints: list[Constraint] = []
        self._objective: LinExpr = LinExpr()
        self._sense: str = ObjectiveSense.MAXIMIZE

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------
    def add_var(
        self,
        name: str,
        vartype: VarType = VarType.BINARY,
        lb: float = 0.0,
        ub: float = 1.0,
    ) -> Variable:
        """Create and register a variable.  Names must be unique."""
        if name in self._by_name:
            raise ModelError(f"duplicate variable name {name!r}")
        var = Variable(name, vartype, lb, ub, index=len(self._variables))
        self._variables.append(var)
        self._by_name[name] = var
        return var

    def add_binary(self, name: str) -> Variable:
        """Add a 0-1 variable."""
        return self.add_var(name, VarType.BINARY, 0.0, 1.0)

    def add_integer(self, name: str, lb: float = 0.0, ub: float = float("inf")) -> Variable:
        """Add a general integer variable."""
        return self.add_var(name, VarType.INTEGER, lb, ub)

    def add_continuous(self, name: str, lb: float = 0.0, ub: float = float("inf")) -> Variable:
        """Add a continuous variable."""
        return self.add_var(name, VarType.CONTINUOUS, lb, ub)

    def add_binaries(self, names: Iterable[str]) -> list[Variable]:
        """Add a batch of 0-1 variables."""
        return [self.add_binary(n) for n in names]

    def var(self, name: str) -> Variable:
        """Look up a variable by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ModelError(f"unknown variable {name!r}") from None

    def has_var(self, name: str) -> bool:
        return name in self._by_name

    @property
    def variables(self) -> tuple[Variable, ...]:
        return tuple(self._variables)

    @property
    def num_vars(self) -> int:
        return len(self._variables)

    # ------------------------------------------------------------------
    # constraints and objective
    # ------------------------------------------------------------------
    def add_constraint(self, constraint: Constraint, name: str | None = None) -> Constraint:
        """Register a constraint; unknown variable names are rejected."""
        for var_name in constraint.terms:
            if var_name not in self._by_name:
                raise ModelError(
                    f"constraint references unknown variable {var_name!r}"
                )
        if name is not None:
            constraint.name = name
        elif constraint.name is None:
            constraint.name = f"c{len(self._constraints)}"
        self._constraints.append(constraint)
        return constraint

    def add_constraints(self, constraints: Iterable[Constraint]) -> list[Constraint]:
        """Register several constraints."""
        return [self.add_constraint(c) for c in constraints]

    @property
    def constraints(self) -> tuple[Constraint, ...]:
        return tuple(self._constraints)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    def set_objective(self, expr: Operand, sense: str = ObjectiveSense.MAXIMIZE) -> None:
        """Set the objective function and direction ('max' or 'min')."""
        if sense not in (ObjectiveSense.MAXIMIZE, ObjectiveSense.MINIMIZE):
            raise ModelError(f"objective sense must be 'max' or 'min', got {sense!r}")
        expr = LinExpr.coerce(expr)
        for var_name in expr.terms:
            if var_name not in self._by_name:
                raise ModelError(f"objective references unknown variable {var_name!r}")
        self._objective = expr
        self._sense = sense

    @property
    def objective(self) -> LinExpr:
        return self._objective

    @property
    def sense(self) -> str:
        return self._sense

    @property
    def is_maximization(self) -> bool:
        return self._sense == ObjectiveSense.MAXIMIZE

    # ------------------------------------------------------------------
    # matrix form
    # ------------------------------------------------------------------
    def objective_vector(self) -> np.ndarray:
        """Dense objective coefficient vector aligned with variable indices."""
        c = np.zeros(self.num_vars)
        for name, coef in self._objective.terms.items():
            c[self._by_name[name].index] = coef
        return c

    def constraint_matrices(
        self,
    ) -> tuple[sp.csr_matrix, np.ndarray, sp.csr_matrix, np.ndarray]:
        """Sparse (A_ub, b_ub, A_eq, b_eq) with GE rows negated into LE."""
        rows_ub: list[int] = []
        cols_ub: list[int] = []
        data_ub: list[float] = []
        b_ub: list[float] = []
        rows_eq: list[int] = []
        cols_eq: list[int] = []
        data_eq: list[float] = []
        b_eq: list[float] = []
        for con in self._constraints:
            if con.sense is Sense.EQ:
                r = len(b_eq)
                for name, coef in con.terms.items():
                    rows_eq.append(r)
                    cols_eq.append(self._by_name[name].index)
                    data_eq.append(coef)
                b_eq.append(con.rhs)
            else:
                flip = -1.0 if con.sense is Sense.GE else 1.0
                r = len(b_ub)
                for name, coef in con.terms.items():
                    rows_ub.append(r)
                    cols_ub.append(self._by_name[name].index)
                    data_ub.append(flip * coef)
                b_ub.append(flip * con.rhs)
        n = self.num_vars
        a_ub = sp.csr_matrix(
            (data_ub, (rows_ub, cols_ub)), shape=(len(b_ub), n), dtype=float
        )
        a_eq = sp.csr_matrix(
            (data_eq, (rows_eq, cols_eq)), shape=(len(b_eq), n), dtype=float
        )
        return a_ub, np.asarray(b_ub, float), a_eq, np.asarray(b_eq, float)

    def bounds(self) -> list[tuple[float, float]]:
        """Per-variable (lb, ub) list aligned with variable indices."""
        return [(v.lb, v.ub) for v in self._variables]

    def integer_mask(self) -> np.ndarray:
        """Boolean array marking integer (incl. binary) variables."""
        return np.array([v.is_integer for v in self._variables], dtype=bool)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def objective_value(self, values: Mapping[str, float]) -> float:
        """Objective value under a name -> value mapping."""
        return self._objective.evaluate(values)

    def violated_constraints(
        self, values: Mapping[str, float], tol: float = 1e-6
    ) -> list[Constraint]:
        """Constraints not satisfied by *values* (within *tol*)."""
        return [c for c in self._constraints if not c.is_satisfied(values, tol)]

    def is_feasible(self, values: Mapping[str, float], tol: float = 1e-6) -> bool:
        """True if *values* satisfies all constraints and variable bounds."""
        for var in self._variables:
            try:
                x = values[var.name]
            except KeyError:
                return False
            if x < var.lb - tol or x > var.ub + tol:
                return False
            if var.is_integer and abs(x - round(x)) > tol:
                return False
        return not self.violated_constraints(values, tol)

    def copy(self) -> "ILPModel":
        """Structural copy (variables/constraints are rebuilt)."""
        out = ILPModel(self.name)
        for v in self._variables:
            out.add_var(v.name, v.vartype, v.lb, v.ub)
        for c in self._constraints:
            out.add_constraint(Constraint(c.terms, c.sense, c.rhs, c.name))
        out._objective = self._objective.copy()
        out._sense = self._sense
        return out

    def __repr__(self) -> str:
        return (
            f"ILPModel({self.name!r}, vars={self.num_vars}, "
            f"cons={self.num_constraints}, sense={self._sense})"
        )
