"""Solution and statistics containers returned by the solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ILPError
from repro.ilp.status import SolveStatus
from repro.ilp.variable import Variable


@dataclass
class SolveStats:
    """Machine-independent effort counters.

    The paper reports CPLEX wall-clock on a 1 GHz Pentium III; since our
    substrate is different, the benchmark harness reports *normalized*
    runtimes plus these counters, which are stable across machines.
    """

    nodes: int = 0                # branch-and-bound nodes expanded
    lp_solves: int = 0            # LP relaxations solved
    simplex_iterations: int = 0   # total pivots across LP solves
    presolve_fixed: int = 0       # variables fixed by presolve
    cuts_added: int = 0           # cutting planes added at the root
    heuristic_moves: int = 0      # local-search moves (heuristic solver)
    restarts: int = 0             # heuristic restarts
    wall_time: float = 0.0        # seconds, informational only

    def merge(self, other: "SolveStats") -> None:
        """Accumulate counters from a sub-solve."""
        self.nodes += other.nodes
        self.lp_solves += other.lp_solves
        self.simplex_iterations += other.simplex_iterations
        self.presolve_fixed += other.presolve_fixed
        self.cuts_added += other.cuts_added
        self.heuristic_moves += other.heuristic_moves
        self.restarts += other.restarts
        self.wall_time += other.wall_time


@dataclass
class Solution:
    """Result of solving an :class:`repro.ilp.model.ILPModel`."""

    status: SolveStatus
    objective: float | None = None
    values: dict[str, float] = field(default_factory=dict)
    stats: SolveStats = field(default_factory=SolveStats)
    bound: float | None = None    # best dual bound when search was cut off

    def value(self, var: Variable | str) -> float:
        """Value of a variable (by object or name).

        Raises:
            ILPError: if the solution carries no assignment or the variable
                is not part of it.
        """
        if not self.status.has_solution:
            raise ILPError(f"no solution available (status={self.status.value})")
        name = var.name if isinstance(var, Variable) else var
        try:
            return self.values[name]
        except KeyError:
            raise ILPError(f"variable {name!r} not in solution") from None

    def rounded(self, var: Variable | str) -> int:
        """Integer value of a variable (nearest int)."""
        return int(round(self.value(var)))

    def binary_support(self, prefix: str = "") -> list[str]:
        """Names of variables at value 1 (optionally filtered by prefix)."""
        return sorted(
            name
            for name, val in self.values.items()
            if name.startswith(prefix) and round(val) == 1
        )

    def as_mapping(self) -> Mapping[str, float]:
        return dict(self.values)

    def __repr__(self) -> str:
        obj = "None" if self.objective is None else f"{self.objective:g}"
        return (
            f"Solution(status={self.status.value}, objective={obj}, "
            f"nodes={self.stats.nodes}, lps={self.stats.lp_solves})"
        )
