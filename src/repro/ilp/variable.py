"""Decision variables for the ILP modeling layer."""

from __future__ import annotations

import enum
import math
from numbers import Real
from typing import TYPE_CHECKING, Union

from repro.errors import ModelError
from repro.ilp.expr import LinExpr

if TYPE_CHECKING:  # pragma: no cover
    from repro.ilp.constraint import Constraint


class VarType(enum.Enum):
    """Kind of decision variable."""

    BINARY = "binary"
    INTEGER = "integer"
    CONTINUOUS = "continuous"


class Variable:
    """A named decision variable with bounds and a type.

    Variables are created through :meth:`repro.ilp.model.ILPModel.add_var`
    (or the ``add_binary`` / ``add_integer`` / ``add_continuous`` helpers)
    so the model can keep a consistent index.  Arithmetic on variables
    yields :class:`LinExpr`; comparisons yield constraints.
    """

    __slots__ = ("name", "vartype", "lb", "ub", "index")

    def __init__(
        self,
        name: str,
        vartype: VarType = VarType.BINARY,
        lb: float = 0.0,
        ub: float = 1.0,
        index: int = -1,
    ):
        if not name or not isinstance(name, str):
            raise ModelError(f"variable name must be a non-empty string, got {name!r}")
        if math.isnan(lb) or math.isnan(ub) or lb > ub:
            raise ModelError(f"invalid bounds [{lb}, {ub}] for variable {name!r}")
        if vartype is VarType.BINARY and (lb < 0 or ub > 1):
            raise ModelError(f"binary variable {name!r} must have bounds within [0, 1]")
        self.name = name
        self.vartype = vartype
        self.lb = float(lb)
        self.ub = float(ub)
        self.index = index

    @property
    def is_integer(self) -> bool:
        """True for binary and general-integer variables."""
        return self.vartype in (VarType.BINARY, VarType.INTEGER)

    def to_expr(self) -> LinExpr:
        """This variable as a single-term expression."""
        return LinExpr({self.name: 1.0})

    # Arithmetic delegates to LinExpr so `2*x + y - 3 <= z` works.
    def __add__(self, other) -> LinExpr:
        return self.to_expr() + other

    def __radd__(self, other) -> LinExpr:
        return self.to_expr() + other

    def __sub__(self, other) -> LinExpr:
        return self.to_expr() - other

    def __rsub__(self, other) -> LinExpr:
        return LinExpr.coerce(other) - self.to_expr()

    def __mul__(self, factor: Real) -> LinExpr:
        return self.to_expr() * factor

    def __rmul__(self, factor: Real) -> LinExpr:
        return self.to_expr() * factor

    def __truediv__(self, divisor: Real) -> LinExpr:
        return self.to_expr() / divisor

    def __neg__(self) -> LinExpr:
        return -self.to_expr()

    def __le__(self, other) -> "Constraint":
        return self.to_expr() <= other

    def __ge__(self, other) -> "Constraint":
        return self.to_expr() >= other

    # NOTE: unlike LinExpr, variables keep identity-based __eq__/__hash__ so
    # they can live in sets and dict keys; use `x.to_expr() == rhs` (or an
    # explicit Constraint) for equality constraints anchored at a variable.

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, {self.vartype.value}, [{self.lb:g}, {self.ub:g}])"


Operand = Union[LinExpr, Variable, Real]
