"""Exact 0-1 / mixed-integer search: LP-based best-first branch and bound.

This is the reproduction's stand-in for CPLEX's MIP solver.  Design:

* best-first node selection on the LP relaxation bound (falls back to the
  paper's observation that EC instances are "non-trivially smaller", so
  proving optimality on them is cheap);
* most-fractional branching with a deterministic tie-break;
* a rounding + greedy-repair primal heuristic at every node to find
  incumbents early;
* optional warm start: EC always has the previous solution available, and
  feeding it in gives the search an immediate incumbent — this is exactly
  why the paper's fast/preserving EC re-solves are cheap;
* pluggable LP backend (own simplex or scipy HiGHS).
"""

from __future__ import annotations

import heapq
import itertools
import time

import numpy as np

from repro.errors import ModelError
from repro.ilp.lp_backend import LPBackend, ScipyBackend, default_backend
from repro.ilp.model import ILPModel
from repro.ilp.presolve import presolve
from repro.ilp.solution import Solution, SolveStats
from repro.ilp.status import SolveStatus

_INT_TOL = 1e-6


class BranchAndBoundSolver:
    """Configurable exact solver for bounded (mixed) integer programs.

    Args:
        backend: LP relaxation backend; chosen per problem size if None.
        node_limit: maximum number of expanded nodes before giving up.
        gap_tol: absolute optimality gap at which search stops.
        use_presolve: run :func:`repro.ilp.presolve.presolve` first.
        time_limit: wall-clock budget in seconds (None = unlimited).
    """

    def __init__(
        self,
        backend: LPBackend | None = None,
        node_limit: int = 200_000,
        gap_tol: float = 1e-6,
        use_presolve: bool = True,
        time_limit: float | None = None,
    ):
        self.backend = backend
        self.node_limit = node_limit
        self.gap_tol = gap_tol
        self.use_presolve = use_presolve
        self.time_limit = time_limit

    # ------------------------------------------------------------------
    def solve(
        self,
        model: ILPModel,
        warm_start: dict[str, float] | None = None,
    ) -> Solution:
        """Solve *model* to proven optimality (bounds permitting).

        Args:
            warm_start: optional full variable assignment used as the
                initial incumbent if it is feasible (infeasible warm starts
                are silently ignored — EC hands over stale solutions on
                purpose).
        """
        t0 = time.perf_counter()
        stats = SolveStats()
        work_model = model
        fixed: dict[str, float] = {}
        if self.use_presolve:
            pres = presolve(model)
            stats.presolve_fixed = len(pres.fixed)
            if pres.status is SolveStatus.INFEASIBLE:
                stats.wall_time = time.perf_counter() - t0
                return Solution(SolveStatus.INFEASIBLE, stats=stats)
            if pres.status is SolveStatus.OPTIMAL:
                values = pres.fixed
                if not model.is_feasible(values):
                    stats.wall_time = time.perf_counter() - t0
                    return Solution(SolveStatus.INFEASIBLE, stats=stats)
                stats.wall_time = time.perf_counter() - t0
                return Solution(
                    SolveStatus.OPTIMAL,
                    objective=model.objective_value(values),
                    values=values,
                    stats=stats,
                )
            work_model = pres.model
            fixed = pres.fixed

        solution = self._branch_and_bound(work_model, warm_start, stats, t0)
        if solution.status.has_solution and fixed:
            full = dict(fixed)
            full.update(solution.values)
            solution.values = full
            solution.objective = model.objective_value(full)
        stats.wall_time = time.perf_counter() - t0
        return solution

    # ------------------------------------------------------------------
    def _branch_and_bound(
        self,
        model: ILPModel,
        warm_start: dict[str, float] | None,
        stats: SolveStats,
        t0: float,
    ) -> Solution:
        n = model.num_vars
        if n == 0:
            return Solution(SolveStatus.OPTIMAL, objective=0.0, values={})
        names = [v.name for v in model.variables]
        c_orig = model.objective_vector()
        # Internally always minimize.
        sign = -1.0 if model.is_maximization else 1.0
        c = sign * c_orig
        a_ub, b_ub, a_eq, b_eq = model.constraint_matrices()
        base_lb = np.array([v.lb for v in model.variables])
        base_ub = np.array([v.ub for v in model.variables])
        int_mask = model.integer_mask()
        backend = self.backend or default_backend(n, model.num_constraints)

        incumbent_x: np.ndarray | None = None
        incumbent_val = np.inf  # minimized objective

        def try_incumbent(x: np.ndarray) -> None:
            nonlocal incumbent_x, incumbent_val
            values = {names[i]: float(x[i]) for i in range(n)}
            if model.is_feasible(values, tol=1e-6):
                val = float(c @ x)
                if val < incumbent_val - 1e-12:
                    incumbent_val = val
                    incumbent_x = x.copy()

        if warm_start is not None:
            try:
                x0 = np.array([float(warm_start[nm]) for nm in names])
            except KeyError:
                x0 = None
            if x0 is not None:
                try_incumbent(x0)

        if incumbent_x is None and bool(np.all(int_mask)) and np.all(
            (base_lb >= -1e-9) & (base_ub <= 1 + 1e-9)
        ):
            # Pure 0-1 model with no usable warm start: kick-start the
            # incumbent with a short iterative-improvement run so a
            # time/node-limited search still returns a feasible point.
            from repro.ilp.heuristic import HeuristicILPSolver

            kick = HeuristicILPSolver(
                max_flips=min(20_000, 200 * n + 500), max_restarts=1, seed=0,
                stop_on_first_feasible=True,
            ).solve(model)
            stats.heuristic_moves += kick.stats.heuristic_moves
            if kick.status.has_solution:
                try_incumbent(np.array([kick.values[nm] for nm in names]))

        fallback = ScipyBackend()

        def solve_lp(lb: np.ndarray, ub: np.ndarray):
            nonlocal backend
            stats.lp_solves += 1
            res = backend.solve(c, a_ub, b_ub, a_eq, b_eq, list(zip(lb, ub)))
            if res.status in (SolveStatus.ITERATION_LIMIT, SolveStatus.ERROR) and not isinstance(
                backend, ScipyBackend
            ):
                # The lightweight simplex stalled (degenerate relaxation);
                # switch this search permanently to the HiGHS backend.
                backend = fallback
                res = backend.solve(c, a_ub, b_ub, a_eq, b_eq, list(zip(lb, ub)))
            stats.simplex_iterations += res.iterations
            return res

        root = solve_lp(base_lb, base_ub)
        if root.status is SolveStatus.INFEASIBLE:
            return Solution(SolveStatus.INFEASIBLE, stats=stats)
        if root.status is SolveStatus.UNBOUNDED:
            return Solution(SolveStatus.UNBOUNDED, stats=stats)
        if root.status not in (SolveStatus.OPTIMAL,):
            return Solution(SolveStatus.ERROR, stats=stats)

        counter = itertools.count()
        heap: list[tuple[float, int, np.ndarray, np.ndarray, np.ndarray]] = []
        heapq.heappush(heap, (root.objective, next(counter), base_lb, base_ub, root.x))
        best_bound = root.objective

        while heap:
            if stats.nodes >= self.node_limit:
                break
            if self.time_limit is not None and time.perf_counter() - t0 > self.time_limit:
                break
            bound, _, lb, ub, x = heapq.heappop(heap)
            best_bound = bound
            if bound >= incumbent_val - self.gap_tol:
                break  # best-first: every remaining node is dominated
            stats.nodes += 1

            frac = np.where(int_mask, np.abs(x - np.round(x)), 0.0)
            branch_var = int(np.argmax(frac))
            if frac[branch_var] <= _INT_TOL:
                # Integral LP optimum at this node.
                try_incumbent(np.where(int_mask, np.round(x), x))
                continue

            # Primal heuristic: round-and-check.
            rounded = np.where(int_mask, np.round(x), x)
            rounded = np.clip(rounded, lb, ub)
            try_incumbent(rounded)

            floor_val = np.floor(x[branch_var])
            for lo_add, hi_add in (
                (None, floor_val),            # x_j <= floor
                (floor_val + 1.0, None),      # x_j >= ceil
            ):
                child_lb, child_ub = lb.copy(), ub.copy()
                if lo_add is not None:
                    child_lb[branch_var] = max(child_lb[branch_var], lo_add)
                if hi_add is not None:
                    child_ub[branch_var] = min(child_ub[branch_var], hi_add)
                if child_lb[branch_var] > child_ub[branch_var] + 1e-12:
                    continue
                res = solve_lp(child_lb, child_ub)
                if res.status is not SolveStatus.OPTIMAL:
                    continue  # infeasible child is pruned
                if res.objective >= incumbent_val - self.gap_tol:
                    continue  # bound-dominated
                heapq.heappush(
                    heap,
                    (res.objective, next(counter), child_lb, child_ub, res.x),
                )

        exhausted = not heap or (
            incumbent_x is not None and best_bound >= incumbent_val - self.gap_tol
        )
        if incumbent_x is None:
            if exhausted and stats.nodes < self.node_limit:
                return Solution(SolveStatus.INFEASIBLE, stats=stats)
            return Solution(SolveStatus.NODE_LIMIT, stats=stats, bound=sign * best_bound)
        values = {names[i]: float(incumbent_x[i]) for i in range(n)}
        # Snap integers exactly.
        for i in range(n):
            if int_mask[i]:
                values[names[i]] = float(round(values[names[i]]))
        status = SolveStatus.OPTIMAL if exhausted else SolveStatus.FEASIBLE
        return Solution(
            status,
            objective=model.objective_value(values),
            values=values,
            stats=stats,
            bound=sign * best_bound,
        )
