"""Root-node cutting planes for 0-1 models.

Two classic families that match the EC encodings' structure:

* **knapsack cover cuts** — for a row ``sum a_j x_j <= b`` with positive
  coefficients over binaries, any minimal cover ``C`` (``sum_{j in C} a_j >
  b``) yields ``sum_{j in C} x_j <= |C| - 1``;
* **clique cuts** — pairwise conflicts ``x_i + x_j <= 1`` (the paper's
  variable-consistency rows, eq. 6) are merged into larger cliques of a
  conflict graph, giving ``sum_{j in K} x_j <= 1``.

Both separators take an LP relaxation point and only return violated cuts,
so they can run in rounds.  The ablation benchmark measures their effect.
"""

from __future__ import annotations

from typing import Mapping

import networkx as nx

from repro.ilp.constraint import Constraint, Sense
from repro.ilp.model import ILPModel
from repro.ilp.variable import VarType

_EPS = 1e-6


def knapsack_cover_cuts(
    model: ILPModel, lp_point: Mapping[str, float], max_cuts: int = 50
) -> list[Constraint]:
    """Separate violated minimal-cover inequalities at *lp_point*."""
    cuts: list[Constraint] = []
    for con in model.constraints:
        if con.sense is not Sense.LE or len(con.terms) < 2:
            continue
        if any(coef <= 0 for coef in con.terms.values()):
            continue
        if any(model.var(nm).vartype is not VarType.BINARY for nm in con.terms):
            continue
        # Greedy cover: add items by decreasing LP value until weight > rhs.
        items = sorted(
            con.terms.items(), key=lambda kv: lp_point.get(kv[0], 0.0), reverse=True
        )
        cover: list[str] = []
        weight = 0.0
        for name, coef in items:
            cover.append(name)
            weight += coef
            if weight > con.rhs + _EPS:
                break
        else:
            continue  # row can never be violated; no cover exists
        # Make the cover minimal by dropping unneeded items.
        for name in sorted(cover, key=lambda nm: con.terms[nm]):
            if weight - con.terms[name] > con.rhs + _EPS:
                cover.remove(name)
                weight -= con.terms[name]
        lhs_val = sum(lp_point.get(nm, 0.0) for nm in cover)
        if lhs_val > len(cover) - 1 + _EPS:
            cuts.append(
                Constraint({nm: 1.0 for nm in cover}, Sense.LE, len(cover) - 1)
            )
            if len(cuts) >= max_cuts:
                break
    return cuts


def conflict_graph(model: ILPModel) -> nx.Graph:
    """Graph with an edge per pairwise-conflict row ``x_i + x_j <= 1``."""
    g = nx.Graph()
    for con in model.constraints:
        if (
            con.sense is Sense.LE
            and len(con.terms) == 2
            and abs(con.rhs - 1.0) <= _EPS
            and all(abs(c - 1.0) <= _EPS for c in con.terms.values())
        ):
            u, v = con.terms
            g.add_edge(u, v)
    return g


def clique_cuts(
    model: ILPModel, lp_point: Mapping[str, float], max_cuts: int = 50
) -> list[Constraint]:
    """Separate violated clique inequalities from the conflict graph.

    Uses a greedy clique growth seeded at each high-value vertex; exact
    maximum-clique separation is NP-hard and unnecessary here.
    """
    g = conflict_graph(model)
    cuts: list[Constraint] = []
    seen: set[frozenset] = set()
    for seed in sorted(g.nodes, key=lambda nm: lp_point.get(nm, 0.0), reverse=True):
        clique = {seed}
        candidates = set(g.neighbors(seed))
        while candidates:
            best = max(candidates, key=lambda nm: lp_point.get(nm, 0.0))
            clique.add(best)
            candidates &= set(g.neighbors(best))
        if len(clique) < 3:
            continue
        key = frozenset(clique)
        if key in seen:
            continue
        seen.add(key)
        if sum(lp_point.get(nm, 0.0) for nm in clique) > 1.0 + _EPS:
            cuts.append(Constraint({nm: 1.0 for nm in clique}, Sense.LE, 1.0))
            if len(cuts) >= max_cuts:
                break
    return cuts


def strengthen_with_cuts(
    model: ILPModel,
    rounds: int = 3,
    max_cuts_per_round: int = 50,
) -> tuple[ILPModel, int]:
    """Iteratively add violated cuts at the LP relaxation optimum.

    Returns the strengthened model copy and the number of cuts added.
    """
    from repro.ilp.lp_backend import default_backend
    from repro.ilp.status import SolveStatus

    out = model.copy()
    total = 0
    for _ in range(rounds):
        backend = default_backend(out.num_vars, out.num_constraints)
        a_ub, b_ub, a_eq, b_eq = out.constraint_matrices()
        c = out.objective_vector()
        if out.is_maximization:
            c = -c
        res = backend.solve(c, a_ub, b_ub, a_eq, b_eq, out.bounds())
        if res.status is not SolveStatus.OPTIMAL:
            break
        point = {v.name: float(res.x[v.index]) for v in out.variables}
        new = knapsack_cover_cuts(out, point, max_cuts_per_round)
        new += clique_cuts(out, point, max_cuts_per_round - len(new))
        if not new:
            break
        out.add_constraints(new)
        total += len(new)
    return out, total
