"""The ``solve()`` facade the EC layers call.

The paper's flow (Fig. 1) lets the user pick "a standard ILP solver or the
heuristic iterative improvement-based ILP solver"; this function is that
switch.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.ilp.branch_and_bound import BranchAndBoundSolver
from repro.ilp.heuristic import HeuristicILPSolver
from repro.ilp.model import ILPModel
from repro.ilp.solution import Solution

#: Problem size (vars) above which ``method='auto'`` prefers the heuristic,
#: mirroring the paper's split between exact CPLEX rows and heuristic rows.
AUTO_HEURISTIC_VARS = 2_000


def solve(
    model: ILPModel,
    method: str = "exact",
    warm_start: dict[str, float] | None = None,
    *,
    deadline: float | None = None,
    seed: int | None = None,
    **options,
) -> Solution:
    """Solve an ILP model.

    Args:
        model: the instance.
        method: ``"exact"`` (branch and bound), ``"heuristic"`` (iterative
            improvement), or ``"auto"`` (exact for small models, heuristic
            for large ones — the paper's own policy for its tables).
        warm_start: optional starting assignment (the previous EC solution).
        deadline: wall-clock budget in seconds (engine convention; an alias
            for ``time_limit``, which takes precedence when both are given).
        seed: RNG seed for the heuristic solver (the exact solver is
            deterministic and ignores it).
        **options: forwarded to the chosen solver's constructor.

    Raises:
        ModelError: on an unknown method name.
    """
    if method == "auto":
        method = "exact" if model.num_vars <= AUTO_HEURISTIC_VARS else "heuristic"
    if deadline is not None:
        options.setdefault("time_limit", deadline)
    if method == "exact":
        return BranchAndBoundSolver(**options).solve(model, warm_start=warm_start)
    if method == "heuristic":
        if seed is not None:
            options.setdefault("seed", seed)
        return HeuristicILPSolver(**options).solve(model, warm_start=warm_start)
    raise ModelError(f"unknown solve method {method!r} (exact|heuristic|auto)")
