"""Linear expressions with operator overloading.

A :class:`LinExpr` is an affine function ``sum(coef_i * var_i) + constant``
over variables identified by name.  Arithmetic composes expressions;
comparison operators build :class:`repro.ilp.constraint.Constraint`
objects, so models read like the paper's formulas::

    model.add_constraint(x[i] + x[i + n] <= 1)
"""

from __future__ import annotations

from numbers import Real
from typing import Iterable, Mapping, TYPE_CHECKING, Union

from repro.errors import ModelError

if TYPE_CHECKING:  # pragma: no cover
    from repro.ilp.constraint import Constraint
    from repro.ilp.variable import Variable

Operand = Union["LinExpr", "Variable", Real]


class LinExpr:
    """An affine expression over named variables."""

    __slots__ = ("terms", "constant")

    def __init__(self, terms: Mapping[str, float] | None = None, constant: float = 0.0):
        self.terms: dict[str, float] = dict(terms or {})
        self.constant: float = float(constant)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def coerce(value: Operand) -> "LinExpr":
        """Convert a variable or number into a LinExpr (copies are cheap)."""
        from repro.ilp.variable import Variable

        if isinstance(value, LinExpr):
            return value.copy()
        if isinstance(value, Variable):
            return LinExpr({value.name: 1.0})
        if isinstance(value, Real):
            return LinExpr(constant=float(value))
        raise ModelError(f"cannot use {value!r} in a linear expression")

    @staticmethod
    def sum(operands: Iterable[Operand]) -> "LinExpr":
        """Sum an iterable of variables/expressions/numbers efficiently."""
        out = LinExpr()
        for op in operands:
            out._iadd(LinExpr.coerce(op), +1.0)
        return out

    def copy(self) -> "LinExpr":
        return LinExpr(self.terms, self.constant)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def _iadd(self, other: "LinExpr", sign: float) -> "LinExpr":
        for name, coef in other.terms.items():
            new = self.terms.get(name, 0.0) + sign * coef
            if new == 0.0:
                self.terms.pop(name, None)
            else:
                self.terms[name] = new
        self.constant += sign * other.constant
        return self

    def __add__(self, other: Operand) -> "LinExpr":
        return self.copy()._iadd(LinExpr.coerce(other), +1.0)

    def __radd__(self, other: Operand) -> "LinExpr":
        return self.__add__(other)

    def __sub__(self, other: Operand) -> "LinExpr":
        return self.copy()._iadd(LinExpr.coerce(other), -1.0)

    def __rsub__(self, other: Operand) -> "LinExpr":
        return LinExpr.coerce(other)._iadd(self, -1.0)

    def __neg__(self) -> "LinExpr":
        return LinExpr({n: -c for n, c in self.terms.items()}, -self.constant)

    def __mul__(self, factor: Real) -> "LinExpr":
        if not isinstance(factor, Real):
            raise ModelError("only multiplication by a scalar is linear")
        f = float(factor)
        if f == 0.0:
            return LinExpr()
        return LinExpr({n: f * c for n, c in self.terms.items()}, f * self.constant)

    def __rmul__(self, factor: Real) -> "LinExpr":
        return self.__mul__(factor)

    def __truediv__(self, divisor: Real) -> "LinExpr":
        if not isinstance(divisor, Real) or float(divisor) == 0.0:
            raise ModelError("division only by a non-zero scalar")
        return self.__mul__(1.0 / float(divisor))

    # ------------------------------------------------------------------
    # comparisons build constraints
    # ------------------------------------------------------------------
    def __le__(self, other: Operand) -> "Constraint":
        from repro.ilp.constraint import Constraint, Sense

        return Constraint.from_sides(self, other, Sense.LE)

    def __ge__(self, other: Operand) -> "Constraint":
        from repro.ilp.constraint import Constraint, Sense

        return Constraint.from_sides(self, other, Sense.GE)

    def __eq__(self, other: object) -> "Constraint":  # type: ignore[override]
        from repro.ilp.constraint import Constraint, Sense

        return Constraint.from_sides(self, other, Sense.EQ)  # type: ignore[arg-type]

    __hash__ = None  # type: ignore[assignment] - expressions are not hashable

    # ------------------------------------------------------------------
    # evaluation / inspection
    # ------------------------------------------------------------------
    def evaluate(self, values: Mapping[str, float]) -> float:
        """Evaluate the expression under a name -> value mapping.

        Raises:
            ModelError: if a variable appearing in the expression is absent.
        """
        total = self.constant
        for name, coef in self.terms.items():
            try:
                total += coef * values[name]
            except KeyError:
                raise ModelError(f"no value for variable {name!r}") from None
        return total

    def variables(self) -> tuple[str, ...]:
        """Sorted names of variables with non-zero coefficients."""
        return tuple(sorted(self.terms))

    def is_constant(self) -> bool:
        return not self.terms

    def __repr__(self) -> str:
        parts = [f"{c:+g}*{n}" for n, c in sorted(self.terms.items())]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return "LinExpr(" + " ".join(parts) + ")"
