"""0-1 / mixed integer linear programming substrate, built from scratch.

The paper solves every EC formulation with CPLEX; this subpackage provides
the equivalent machinery:

* :mod:`repro.ilp.expr`, :mod:`repro.ilp.variable`,
  :mod:`repro.ilp.constraint`, :mod:`repro.ilp.model` -- a small modeling
  layer with operator overloading (``2*x + y <= 3``);
* :mod:`repro.ilp.simplex` -- a dense two-phase primal simplex LP solver;
* :mod:`repro.ilp.lp_backend` -- pluggable LP relaxation backends (own
  simplex, scipy HiGHS);
* :mod:`repro.ilp.presolve` -- 0-1 presolve reductions;
* :mod:`repro.ilp.branch_and_bound` -- exact best-first 0-1/MIP search;
* :mod:`repro.ilp.cuts` -- root-node cutting planes;
* :mod:`repro.ilp.heuristic` -- the iterative-improvement heuristic ILP
  solver the paper cites as reference [6];
* :mod:`repro.ilp.solver` -- the ``solve()`` facade used by the EC layers.
"""

from repro.ilp.expr import LinExpr
from repro.ilp.variable import VarType, Variable
from repro.ilp.constraint import Constraint, Sense
from repro.ilp.model import ILPModel
from repro.ilp.status import SolveStatus
from repro.ilp.solution import Solution, SolveStats
from repro.ilp.solver import solve
from repro.ilp.branch_and_bound import BranchAndBoundSolver
from repro.ilp.heuristic import HeuristicILPSolver
from repro.ilp.simplex import SimplexResult, simplex_solve

__all__ = [
    "BranchAndBoundSolver",
    "Constraint",
    "HeuristicILPSolver",
    "ILPModel",
    "LinExpr",
    "Sense",
    "SimplexResult",
    "Solution",
    "SolveStats",
    "SolveStatus",
    "VarType",
    "Variable",
    "simplex_solve",
    "solve",
]
