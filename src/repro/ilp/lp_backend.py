"""Pluggable LP-relaxation backends.

Two interchangeable backends solve the LP relaxations inside branch and
bound:

* :class:`SimplexBackend` — the from-scratch solver in
  :mod:`repro.ilp.simplex` (the default for small problems, and the one
  that makes this reproduction self-contained);
* :class:`ScipyBackend` — scipy's HiGHS, used for large relaxations and as
  an independent cross-check in the test suite.

``default_backend()`` picks per problem size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

from repro.ilp.simplex import simplex_solve
from repro.ilp.status import SolveStatus


@dataclass
class LPResult:
    """Uniform result record for any LP backend."""

    status: SolveStatus
    x: np.ndarray | None = None
    objective: float | None = None
    iterations: int = 0


class LPBackend(Protocol):
    """Anything that can solve ``min c'x`` over a box + linear system."""

    name: str

    def solve(
        self, c, a_ub, b_ub, a_eq, b_eq, bounds
    ) -> LPResult:  # pragma: no cover - protocol
        ...


class SimplexBackend:
    """The package's own dense two-phase simplex."""

    name = "simplex"

    def __init__(self, max_iterations: int = 50_000):
        self.max_iterations = max_iterations

    def solve(self, c, a_ub, b_ub, a_eq, b_eq, bounds) -> LPResult:
        res = simplex_solve(
            c,
            a_ub,
            b_ub,
            a_eq,
            b_eq,
            bounds,
            maximize=False,
            max_iterations=self.max_iterations,
        )
        return LPResult(res.status, res.x, res.objective, res.iterations)


class ScipyBackend:
    """scipy.optimize.linprog (HiGHS dual simplex)."""

    name = "scipy-highs"

    def solve(self, c, a_ub, b_ub, a_eq, b_eq, bounds) -> LPResult:
        def _none_if_empty(a, b):
            if a is None or b is None or (sp.issparse(a) and a.shape[0] == 0):
                return None, None
            if not sp.issparse(a) and np.asarray(a).size == 0:
                return None, None
            return a, b

        a_ub, b_ub = _none_if_empty(a_ub, b_ub)
        a_eq, b_eq = _none_if_empty(a_eq, b_eq)
        res = linprog(
            c,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
            method="highs",
        )
        iterations = int(getattr(res, "nit", 0) or 0)
        if res.status == 0:
            return LPResult(SolveStatus.OPTIMAL, np.asarray(res.x), float(res.fun), iterations)
        if res.status == 2:
            return LPResult(SolveStatus.INFEASIBLE, iterations=iterations)
        if res.status == 3:
            return LPResult(SolveStatus.UNBOUNDED, iterations=iterations)
        if res.status == 1:
            return LPResult(SolveStatus.ITERATION_LIMIT, iterations=iterations)
        return LPResult(SolveStatus.ERROR, iterations=iterations)


#: Problem size (vars * constraints) above which the scipy backend is used
#: by ``default_backend``; the dense tableau grows quadratically.
SIMPLEX_SIZE_LIMIT = 40_000


def default_backend(num_vars: int, num_constraints: int) -> LPBackend:
    """Choose a backend: own simplex when small, HiGHS when large."""
    if num_vars * max(num_constraints, 1) <= SIMPLEX_SIZE_LIMIT:
        return SimplexBackend()
    return ScipyBackend()
