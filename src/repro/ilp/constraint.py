"""Linear constraints."""

from __future__ import annotations

import enum
from typing import Mapping

from repro.errors import ModelError
from repro.ilp.expr import LinExpr, Operand


class Sense(enum.Enum):
    """Relational sense of a linear constraint."""

    LE = "<="
    GE = ">="
    EQ = "=="

    def holds(self, lhs: float, rhs: float, tol: float = 1e-9) -> bool:
        """Numeric comparison with tolerance."""
        if self is Sense.LE:
            return lhs <= rhs + tol
        if self is Sense.GE:
            return lhs >= rhs - tol
        return abs(lhs - rhs) <= tol


class Constraint:
    """``expr (<=|>=|==) rhs`` with the constant folded into the rhs.

    Normal form: ``terms`` holds the variable coefficients of the left-hand
    side, ``rhs`` the right-hand constant.  ``name`` is assigned by the
    model when the constraint is added.
    """

    __slots__ = ("terms", "sense", "rhs", "name")

    def __init__(
        self,
        terms: Mapping[str, float],
        sense: Sense,
        rhs: float,
        name: str | None = None,
    ):
        self.terms: dict[str, float] = dict(terms)
        self.sense = sense
        self.rhs = float(rhs)
        self.name = name

    @classmethod
    def from_sides(cls, lhs: Operand, rhs: Operand, sense: Sense) -> "Constraint":
        """Build the normal form of ``lhs sense rhs``."""
        diff = LinExpr.coerce(lhs) - LinExpr.coerce(rhs)
        if diff.is_constant():
            raise ModelError("constraint involves no variables")
        return cls(diff.terms, sense, -diff.constant)

    def lhs_expr(self) -> LinExpr:
        """The left-hand side as an expression (constant 0)."""
        return LinExpr(self.terms)

    def evaluate(self, values: Mapping[str, float]) -> float:
        """Left-hand-side value under *values*."""
        return self.lhs_expr().evaluate(values)

    def is_satisfied(self, values: Mapping[str, float], tol: float = 1e-9) -> bool:
        """True if the constraint holds under *values* within *tol*."""
        return self.sense.holds(self.evaluate(values), self.rhs, tol)

    def violation(self, values: Mapping[str, float]) -> float:
        """Non-negative amount by which the constraint is violated."""
        lhs = self.evaluate(values)
        if self.sense is Sense.LE:
            return max(0.0, lhs - self.rhs)
        if self.sense is Sense.GE:
            return max(0.0, self.rhs - lhs)
        return abs(lhs - self.rhs)

    def variables(self) -> tuple[str, ...]:
        """Sorted names of the variables in the constraint."""
        return tuple(sorted(self.terms))

    def __repr__(self) -> str:
        body = " ".join(f"{c:+g}*{n}" for n, c in sorted(self.terms.items()))
        label = f" [{self.name}]" if self.name else ""
        return f"Constraint({body} {self.sense.value} {self.rhs:g}{label})"
