"""Presolve reductions for 0-1 dominated models.

Standard MIP presolve specialized to the structures the EC encodings
produce (set-cover ``>=`` rows, pairwise-conflict ``<=`` rows):

* substitute variables whose bounds are already tight (``lb == ub``);
* drop rows made redundant by activity bounds;
* detect rows that are infeasible outright;
* *forcing* rows: when a row can only be satisfied by pushing every free
  variable to one of its bounds, fix those variables (this subsumes SAT
  unit propagation on the covering rows);
* iterate to a fixpoint.

The result maps back to the original variable space, so callers never see
the reduced model unless they ask for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelError
from repro.ilp.constraint import Constraint, Sense
from repro.ilp.model import ILPModel
from repro.ilp.status import SolveStatus

_EPS = 1e-9


@dataclass
class PresolveResult:
    """Outcome of presolving a model."""

    status: SolveStatus          # OPTIMAL = fully solved, FEASIBLE = reduced
    model: ILPModel | None       # the reduced model (None when solved/infeasible)
    fixed: dict[str, float] = field(default_factory=dict)
    dropped_rows: int = 0

    def lift(self, reduced_values: dict[str, float]) -> dict[str, float]:
        """Combine reduced-model values with presolve fixings."""
        out = dict(self.fixed)
        out.update(reduced_values)
        return out


def _row_activity_bounds(
    terms: dict[str, float], lbs: dict[str, float], ubs: dict[str, float]
) -> tuple[float, float]:
    """(min, max) achievable value of a linear form over the current box."""
    lo = hi = 0.0
    for name, coef in terms.items():
        if coef >= 0:
            lo += coef * lbs[name]
            hi += coef * ubs[name]
        else:
            lo += coef * ubs[name]
            hi += coef * lbs[name]
    return lo, hi


def presolve(model: ILPModel, max_rounds: int = 50) -> PresolveResult:
    """Apply fixpoint presolve to *model*.

    Returns:
        A :class:`PresolveResult`:

        * ``status == INFEASIBLE`` — a row cannot be satisfied;
        * ``status == OPTIMAL`` — every variable was fixed; ``fixed`` is the
          unique completion (objective evaluation is the caller's job);
        * ``status == FEASIBLE`` — ``model`` holds the reduced instance.
    """
    lbs = {v.name: v.lb for v in model.variables}
    ubs = {v.name: v.ub for v in model.variables}
    integer = {v.name: v.is_integer for v in model.variables}
    rows: list[Constraint] = [Constraint(c.terms, c.sense, c.rhs, c.name) for c in model.constraints]
    dropped = 0

    for _round in range(max_rounds):
        changed = False
        survivors: list[Constraint] = []
        for con in rows:
            # Substitute variables already fixed by earlier rounds.
            terms = {}
            rhs = con.rhs
            for name, coef in con.terms.items():
                if ubs[name] - lbs[name] <= _EPS:
                    rhs -= coef * lbs[name]
                else:
                    terms[name] = coef
            lo, hi = _row_activity_bounds(terms, lbs, ubs)
            if con.sense is Sense.LE:
                if lo > rhs + 1e-7:
                    return PresolveResult(SolveStatus.INFEASIBLE, None, dropped_rows=dropped)
                if hi <= rhs + _EPS:
                    dropped += 1
                    changed = True
                    continue
                if abs(lo - rhs) <= _EPS:
                    # Forcing: every term must sit at its minimizing bound.
                    for name, coef in terms.items():
                        val = lbs[name] if coef >= 0 else ubs[name]
                        lbs[name] = ubs[name] = val
                    dropped += 1
                    changed = True
                    continue
            elif con.sense is Sense.GE:
                if hi < rhs - 1e-7:
                    return PresolveResult(SolveStatus.INFEASIBLE, None, dropped_rows=dropped)
                if lo >= rhs - _EPS:
                    dropped += 1
                    changed = True
                    continue
                if abs(hi - rhs) <= _EPS:
                    for name, coef in terms.items():
                        val = ubs[name] if coef >= 0 else lbs[name]
                        lbs[name] = ubs[name] = val
                    dropped += 1
                    changed = True
                    continue
            else:  # EQ
                if lo > rhs + 1e-7 or hi < rhs - 1e-7:
                    return PresolveResult(SolveStatus.INFEASIBLE, None, dropped_rows=dropped)
                if abs(lo - hi) <= _EPS and abs(lo - rhs) <= _EPS:
                    dropped += 1
                    changed = True
                    continue
            if not terms:
                # Constant row that was not caught above is trivially decided
                # by the activity checks; reaching here means it holds.
                dropped += 1
                changed = True
                continue
            survivors.append(Constraint(terms, con.sense, rhs, con.name))
        rows = survivors

        # Singleton rows tighten a single variable's bound directly.
        tightened: list[Constraint] = []
        for con in rows:
            if len(con.terms) != 1:
                tightened.append(con)
                continue
            (name, coef), = con.terms.items()
            bound = con.rhs / coef
            if con.sense is Sense.EQ:
                new_lb = new_ub = bound
            elif (con.sense is Sense.LE) == (coef > 0):
                new_lb, new_ub = lbs[name], min(ubs[name], bound)
            else:
                new_lb, new_ub = max(lbs[name], bound), ubs[name]
            if integer[name]:
                import math

                new_lb = math.ceil(new_lb - 1e-7)
                new_ub = math.floor(new_ub + 1e-7)
            if new_lb > new_ub + _EPS:
                return PresolveResult(SolveStatus.INFEASIBLE, None, dropped_rows=dropped)
            if new_lb > lbs[name] + _EPS or new_ub < ubs[name] - _EPS:
                changed = True
            lbs[name] = max(lbs[name], new_lb)
            ubs[name] = min(ubs[name], new_ub)
            dropped += 1
        rows = tightened
        if not changed:
            break

    fixed = {
        name: lbs[name]
        for name in lbs
        if ubs[name] - lbs[name] <= _EPS
    }
    if len(fixed) == len(lbs):
        return PresolveResult(SolveStatus.OPTIMAL, None, fixed=fixed, dropped_rows=dropped)

    reduced = ILPModel(model.name + ".presolved")
    for v in model.variables:
        if v.name not in fixed:
            reduced.add_var(v.name, v.vartype, lbs[v.name], ubs[v.name])
    for con in rows:
        # Rows may still mention variables fixed in the final round.
        terms = {}
        rhs = con.rhs
        for name, coef in con.terms.items():
            if name in fixed:
                rhs -= coef * fixed[name]
            else:
                terms[name] = coef
        if terms:
            reduced.add_constraint(Constraint(terms, con.sense, rhs, con.name))
        else:
            if not con.sense.holds(0.0, rhs, tol=1e-7):
                return PresolveResult(SolveStatus.INFEASIBLE, None, dropped_rows=dropped)
    obj_terms = {}
    for name, coef in model.objective.terms.items():
        if name not in fixed:
            obj_terms[name] = coef
    from repro.ilp.expr import LinExpr

    reduced.set_objective(LinExpr(obj_terms), sense=model.sense)
    return PresolveResult(SolveStatus.FEASIBLE, reduced, fixed=fixed, dropped_rows=dropped)
