"""A dense two-phase primal simplex LP solver.

This is the from-scratch replacement for the LP machinery the paper gets
from CPLEX ("the most widely used is the SIMPLEX approach", §3).  It solves

    min / max  c'x
    s.t.       A_ub x <= b_ub,  A_eq x = b_eq,  l <= x <= u

by shifting out lower bounds, adding upper bounds as explicit rows, and
running the classic two-phase tableau method with Dantzig pricing and a
Bland's-rule fallback for anti-cycling.

The implementation favours clarity and numerical caution over speed; the
branch-and-bound solver uses it directly for small/medium relaxations and
can delegate to scipy's HiGHS for large ones (see
:mod:`repro.ilp.lp_backend`).  Tests cross-check the two backends on random
LPs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.ilp.status import SolveStatus

#: Upper bound substituted for +inf so every variable lives in a box.
BIG_BOUND = 1e9

_EPS = 1e-9


@dataclass
class SimplexResult:
    """Outcome of an LP solve."""

    status: SolveStatus
    x: np.ndarray | None = None
    objective: float | None = None
    iterations: int = 0


def _as_dense(a) -> np.ndarray:
    if a is None:
        return np.zeros((0, 0))
    if sp.issparse(a):
        return a.toarray()
    return np.asarray(a, dtype=float)


def simplex_solve(
    c,
    a_ub=None,
    b_ub=None,
    a_eq=None,
    b_eq=None,
    bounds=None,
    maximize: bool = False,
    max_iterations: int = 50_000,
) -> SimplexResult:
    """Solve a bounded LP with the two-phase primal simplex method.

    Args:
        c: objective coefficients, length n.
        a_ub, b_ub: inequality system ``a_ub x <= b_ub`` (may be None/empty).
        a_eq, b_eq: equality system (may be None/empty).
        bounds: list of (lb, ub) per variable; None means ``(0, +inf)``.
            Infinite upper bounds are replaced by :data:`BIG_BOUND`.
        maximize: if True the objective is maximized.
        max_iterations: pivot budget across both phases.

    Returns:
        A :class:`SimplexResult`; ``x`` is in the original variable space.
    """
    c = np.asarray(c, dtype=float)
    n = c.size
    a_ub_d = _as_dense(a_ub).reshape(-1, n) if a_ub is not None else np.zeros((0, n))
    b_ub_d = np.asarray(b_ub, dtype=float).ravel() if b_ub is not None else np.zeros(0)
    a_eq_d = _as_dense(a_eq).reshape(-1, n) if a_eq is not None else np.zeros((0, n))
    b_eq_d = np.asarray(b_eq, dtype=float).ravel() if b_eq is not None else np.zeros(0)
    if bounds is None:
        bounds = [(0.0, np.inf)] * n
    lb = np.array([b[0] for b in bounds], dtype=float)
    ub = np.array([min(b[1], BIG_BOUND) for b in bounds], dtype=float)
    if np.any(lb > ub + _EPS):
        return SimplexResult(SolveStatus.INFEASIBLE)

    sign = -1.0 if maximize else 1.0
    c_min = sign * c

    # Shift lower bounds to zero: x = lb + y, 0 <= y <= ub - lb.
    shift_ub = b_ub_d - a_ub_d @ lb if a_ub_d.size else b_ub_d
    shift_eq = b_eq_d - a_eq_d @ lb if a_eq_d.size else b_eq_d
    box = ub - lb

    # Rows: ub-ineqs, eqs, and one y_i <= box_i row per finitely-boxed var.
    bound_rows = np.eye(n)
    rows = [a_ub_d, a_eq_d, bound_rows]
    rhs = [shift_ub, shift_eq, box]
    senses = (
        ["<="] * a_ub_d.shape[0] + ["=="] * a_eq_d.shape[0] + ["<="] * n
    )
    a_all = np.vstack([r for r in rows if r.size] or [np.zeros((0, n))])
    b_all = np.concatenate([r for r in rhs if r.size] or [np.zeros(0)])
    m = a_all.shape[0]

    # Normalize to b >= 0 by negating rows (flips <= to >=).
    senses = list(senses)
    for i in range(m):
        if b_all[i] < 0:
            a_all[i] = -a_all[i]
            b_all[i] = -b_all[i]
            if senses[i] == "<=":
                senses[i] = ">="
            elif senses[i] == ">=":
                senses[i] = "<="

    # Column layout: [y (n)] [slack/surplus] [artificials].
    num_slack = sum(1 for s in senses if s in ("<=", ">="))
    num_art = sum(1 for s in senses if s in (">=", "=="))
    total = n + num_slack + num_art
    tableau = np.zeros((m, total + 1))
    tableau[:, :n] = a_all
    tableau[:, -1] = b_all
    basis = np.empty(m, dtype=int)
    s_col, a_col = n, n + num_slack
    art_cols: list[int] = []
    for i, sense in enumerate(senses):
        if sense == "<=":
            tableau[i, s_col] = 1.0
            basis[i] = s_col
            s_col += 1
        elif sense == ">=":
            tableau[i, s_col] = -1.0
            s_col += 1
            tableau[i, a_col] = 1.0
            basis[i] = a_col
            art_cols.append(a_col)
            a_col += 1
        else:  # ==
            tableau[i, a_col] = 1.0
            basis[i] = a_col
            art_cols.append(a_col)
            a_col += 1

    iterations = 0

    def run(obj_row: np.ndarray, allowed: int) -> str:
        """Pivot until optimal/unbounded; returns 'optimal'|'unbounded'|'limit'."""
        nonlocal iterations
        while True:
            if iterations >= max_iterations:
                return "limit"
            reduced = obj_row[:allowed]
            # Dantzig pricing; Bland once the iteration count gets large.
            if iterations > max_iterations // 2:
                candidates = np.nonzero(reduced < -_EPS)[0]
                if candidates.size == 0:
                    return "optimal"
                enter = int(candidates[0])
            else:
                enter = int(np.argmin(reduced))
                if reduced[enter] >= -_EPS:
                    return "optimal"
            col = tableau[:, enter]
            positive = col > _EPS
            if not np.any(positive):
                return "unbounded"
            ratios = np.full(m, np.inf)
            ratios[positive] = tableau[positive, -1] / col[positive]
            leave = int(np.argmin(ratios))
            # Tie-break by smallest basis index (helps against cycling).
            best = ratios[leave]
            ties = np.nonzero(np.abs(ratios - best) <= _EPS * (1 + abs(best)))[0]
            if ties.size > 1:
                leave = int(ties[np.argmin(basis[ties])])
            pivot = tableau[leave, enter]
            tableau[leave] /= pivot
            for r in range(m):
                if r != leave and abs(tableau[r, enter]) > _EPS:
                    tableau[r] -= tableau[r, enter] * tableau[leave]
            obj_row -= obj_row[enter] * tableau[leave]
            basis[leave] = enter
            iterations += 1

    # ---------------- Phase 1: drive artificials to zero ----------------
    if num_art:
        obj1 = np.zeros(total + 1)
        for col in art_cols:
            obj1[col] = 1.0
        for i in range(m):
            if basis[i] in art_cols:
                obj1 -= tableau[i]
        outcome = run(obj1, allowed=total)
        if outcome == "limit":
            return SimplexResult(SolveStatus.ITERATION_LIMIT, iterations=iterations)
        if -obj1[-1] > 1e-6:
            return SimplexResult(SolveStatus.INFEASIBLE, iterations=iterations)
        # Drive any remaining basic artificials out or drop redundant rows.
        art_set = set(art_cols)
        keep = np.ones(m, dtype=bool)
        for i in range(m):
            if basis[i] in art_set:
                row = tableau[i, : n + num_slack]
                nz = np.nonzero(np.abs(row) > 1e-7)[0]
                if nz.size:
                    enter = int(nz[0])
                    pivot = tableau[i, enter]
                    tableau[i] /= pivot
                    for r in range(m):
                        if r != i and abs(tableau[r, enter]) > _EPS:
                            tableau[r] -= tableau[r, enter] * tableau[i]
                    basis[i] = enter
                else:
                    keep[i] = False
        if not np.all(keep):
            tableau = tableau[keep]
            basis = basis[keep]
            m = tableau.shape[0]
        # Freeze artificials at zero by truncating their columns.
        tableau = np.hstack([tableau[:, : n + num_slack], tableau[:, -1:]])
        total = n + num_slack

    # ---------------- Phase 2: original objective -----------------------
    obj2 = np.zeros(total + 1)
    obj2[:n] = c_min
    for i in range(m):
        if abs(obj2[basis[i]]) > _EPS:
            obj2 -= obj2[basis[i]] * tableau[i]
    outcome = run(obj2, allowed=total)
    if outcome == "limit":
        return SimplexResult(SolveStatus.ITERATION_LIMIT, iterations=iterations)
    if outcome == "unbounded":
        return SimplexResult(SolveStatus.UNBOUNDED, iterations=iterations)

    y = np.zeros(total)
    for i in range(m):
        y[basis[i]] = tableau[i, -1]
    x = lb + y[:n]
    objective = float(c @ x)
    return SimplexResult(SolveStatus.OPTIMAL, x=x, objective=objective, iterations=iterations)
