"""The iterative-improvement heuristic ILP solver (paper reference [6]).

The paper solves its largest table rows with "the heuristic iterative
improvement-based ILP solver presented in [6]" (a UCLA tech report).  The
report is unpublished; this module implements the class of algorithm it
names: weighted iterative improvement over 0-1 variables, i.e. a
constraint-repair local search with dynamic row weights (the classic
*breakout* scheme) plus objective-improving sideways moves once feasible.

Only pure binary models are supported — exactly the class every EC
formulation in the paper produces.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.errors import ModelError
from repro.ilp.constraint import Sense
from repro.ilp.model import ILPModel
from repro.ilp.solution import Solution, SolveStats
from repro.ilp.status import SolveStatus


@dataclass
class _Row:
    """Flattened constraint for the inner loop."""

    var_ids: list[int]
    coefs: list[float]
    sense: Sense
    rhs: float
    weight: float = 1.0
    activity: float = 0.0

    def violation(self) -> float:
        if self.sense is Sense.LE:
            return max(0.0, self.activity - self.rhs)
        if self.sense is Sense.GE:
            return max(0.0, self.rhs - self.activity)
        return abs(self.activity - self.rhs)


class HeuristicILPSolver:
    """Weighted iterative-improvement search for binary ILPs.

    Args:
        max_flips: flip budget per restart.
        max_restarts: independent restarts before giving up.
        noise: probability of a random-walk move when repairing a row.
        weight_increment: additive bump for rows violated at a local
            minimum (the breakout rule).
        seed: RNG seed; every run is deterministic given the seed.
        time_limit: optional wall-clock budget in seconds.
        stop_on_first_feasible: return as soon as any feasible point is
            found instead of spending the remaining restarts improving the
            objective (useful when EC only needs feasibility).
    """

    def __init__(
        self,
        max_flips: int = 200_000,
        max_restarts: int = 10,
        noise: float = 0.15,
        weight_increment: float = 1.0,
        seed: int | None = 0,
        time_limit: float | None = None,
        stop_on_first_feasible: bool = False,
    ):
        self.max_flips = max_flips
        self.max_restarts = max_restarts
        self.noise = noise
        self.weight_increment = weight_increment
        self.seed = seed
        self.time_limit = time_limit
        self.stop_on_first_feasible = stop_on_first_feasible

    # ------------------------------------------------------------------
    def solve(
        self,
        model: ILPModel,
        warm_start: dict[str, float] | None = None,
    ) -> Solution:
        """Search for a good feasible 0-1 point.

        Returns a solution with status ``FEASIBLE`` (never claims
        optimality) or ``NODE_LIMIT`` when no feasible point was found.
        """
        t0 = time.perf_counter()
        for v in model.variables:
            if not v.is_integer or v.lb < -1e-9 or v.ub > 1 + 1e-9:
                raise ModelError(
                    "heuristic solver supports pure 0-1 models only; "
                    f"variable {v.name!r} is {v.vartype.value} in [{v.lb}, {v.ub}]"
                )
        rng = random.Random(self.seed)
        names = [v.name for v in model.variables]
        index = {nm: i for i, nm in enumerate(names)}
        n = len(names)
        rows = [
            _Row(
                var_ids=[index[nm] for nm in con.terms],
                coefs=list(con.terms.values()),
                sense=con.sense,
                rhs=con.rhs,
            )
            for con in model.constraints
        ]
        # var -> [(row_id, coef)] adjacency for O(degree) flip updates.
        touching: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        for r_id, row in enumerate(rows):
            for v_id, coef in zip(row.var_ids, row.coefs):
                touching[v_id].append((r_id, coef))
        obj = [0.0] * n
        for nm, coef in model.objective.terms.items():
            obj[index[nm]] = coef
        obj_sign = 1.0 if model.is_maximization else -1.0  # larger is better

        stats = SolveStats()
        best_x: list[int] | None = None
        best_obj = -float("inf")

        for restart in range(self.max_restarts):
            stats.restarts += 1
            if warm_start is not None and restart == 0:
                x = [int(round(warm_start.get(nm, rng.random() < 0.5))) for nm in names]
            else:
                x = [int(rng.getrandbits(1)) for _ in range(n)]
            for row in rows:
                row.weight = 1.0
                row.activity = sum(
                    c * x[v] for v, c in zip(row.var_ids, row.coefs)
                )
            violated = {r_id for r_id, row in enumerate(rows) if row.violation() > 1e-9}

            def flip(v_id: int) -> None:
                delta = 1 - 2 * x[v_id]  # +1 or -1
                x[v_id] += delta
                for r_id, coef in touching[v_id]:
                    row = rows[r_id]
                    row.activity += coef * delta
                    if row.violation() > 1e-9:
                        violated.add(r_id)
                    else:
                        violated.discard(r_id)

            def weighted_delta(v_id: int) -> float:
                """Change in weighted violation if v_id were flipped."""
                delta = 1 - 2 * x[v_id]
                total = 0.0
                for r_id, coef in touching[v_id]:
                    row = rows[r_id]
                    old = row.violation()
                    row.activity += coef * delta
                    total += row.weight * (row.violation() - old)
                    row.activity -= coef * delta
                return total

            for _flip_no in range(self.max_flips):
                if self.time_limit is not None and time.perf_counter() - t0 > self.time_limit:
                    break
                if not violated:
                    obj_val = sum(o * xi for o, xi in zip(obj, x))
                    if obj_sign * obj_val > obj_sign * best_obj or best_x is None:
                        best_obj = obj_val
                        best_x = list(x)
                    # Objective-improving sideways move keeping feasibility.
                    improving = [
                        v_id
                        for v_id in range(n)
                        if obj_sign * obj[v_id] * (1 - 2 * x[v_id]) > 1e-12
                        and weighted_delta(v_id) <= 1e-9
                    ]
                    if not improving:
                        break  # local optimum of the feasible region
                    flip(rng.choice(improving))
                    stats.heuristic_moves += 1
                    continue
                r_id = rng.choice(tuple(violated))
                row = rows[r_id]
                if rng.random() < self.noise:
                    v_id = rng.choice(row.var_ids)
                else:
                    v_id = min(row.var_ids, key=weighted_delta)
                    if weighted_delta(v_id) >= 0:
                        # Local minimum: breakout — bump violated weights.
                        for rv in violated:
                            rows[rv].weight += self.weight_increment
                flip(v_id)
                stats.heuristic_moves += 1
            if best_x is not None and self.stop_on_first_feasible:
                break
            if self.time_limit is not None and time.perf_counter() - t0 > self.time_limit:
                break

        stats.wall_time = time.perf_counter() - t0
        if best_x is None:
            return Solution(SolveStatus.NODE_LIMIT, stats=stats)
        values = {nm: float(val) for nm, val in zip(names, best_x)}
        return Solution(
            SolveStatus.FEASIBLE,
            objective=model.objective_value(values),
            values=values,
            stats=stats,
        )
