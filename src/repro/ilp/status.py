"""Solve status codes shared by every solver in the package."""

from __future__ import annotations

import enum


class SolveStatus(enum.Enum):
    """Outcome of an LP/ILP solve."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"          # heuristic or limit-interrupted incumbent
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    NODE_LIMIT = "node_limit"      # exact search stopped with no incumbent
    ITERATION_LIMIT = "iteration_limit"
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        """True if a variable assignment accompanies this status."""
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)

    @property
    def is_proven(self) -> bool:
        """True if the status is a proof (optimality or infeasibility)."""
        return self in (SolveStatus.OPTIMAL, SolveStatus.INFEASIBLE, SolveStatus.UNBOUNDED)
