"""Engineering change for schedules.

Mapping the paper's components onto scheduling:

* **enabling** — prefer schedules with *slack*: an operation is flexible
  when it could move one step later (or earlier) without violating
  precedence or capacity; the objective rewards flexible operations,
  mirroring 2-satisfiability;
* **preserving** — after a change (new precedence edge, tighter
  capacity), re-solve maximizing the number of operations keeping their
  start step (optionally pinning a user-specified set);
* *fast* EC for schedules falls out of preserving + warm starts: the
  time-indexed ILP is already local (only rows touching the changed
  operations bind), so the dedicated cone-extraction step of the SAT
  domain is not needed — the warm-started exact solve plays that role.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import ECError
from repro.ilp.expr import LinExpr
from repro.ilp.solution import Solution, SolveStats
from repro.ilp.variable import VarType
from repro.scheduling.problem import SchedulingProblem, start_var_name


def schedule_slack(problem: SchedulingProblem, schedule: Mapping[str, int]) -> float:
    """Fraction of operations that can move one step without conflict.

    The scheduling analogue of the 2-satisfied clause fraction: a future
    change near a slack operation can be absorbed locally.
    """
    ops = problem.operations
    if not ops:
        return 1.0
    flexible = 0
    for op in ops:
        for delta in (+1, -1):
            trial = dict(schedule)
            trial[op.name] = schedule[op.name] + delta
            if 0 <= trial[op.name] < problem.horizon and problem.is_valid(trial):
                flexible += 1
                break
    return flexible / len(ops)


@dataclass
class SchedulingECResult:
    """Outcome of a scheduling EC operation."""

    schedule: dict[str, int] | None
    solution: Solution | None = None
    preserved_fraction: float = 0.0
    slack: float = 0.0
    stats: SolveStats = field(default_factory=SolveStats)

    @property
    def succeeded(self) -> bool:
        return self.schedule is not None


def enable_scheduling_ec(
    problem: SchedulingProblem,
    method: str = "exact",
    **solver_options,
) -> SchedulingECResult:
    """Solve the schedule maximizing per-operation slack.

    For each operation an indicator ``flex[op]`` is 1 only if the
    operation could also start one step later: ``flex[op] <= 1 -
    x[op, s]`` ... linearized via "the shifted copy would be feasible",
    approximated by rewarding starts that leave the *next* step's
    capacity row strictly slack.  Exactness is not required — like the
    paper's objective-mode enabling, the reward merely steers the solver;
    ``schedule_slack`` measures the real slack afterwards.
    """
    from repro.ilp.solver import solve

    model = problem.to_ilp()
    flex_terms = []
    for op in problem.operations:
        peers = [
            other
            for other in problem.operations
            if other.resource == op.resource and other.name != op.name
        ]
        capacity = problem.capacities[op.resource]
        flex = model.add_var(f"flex::{op.name}", VarType.CONTINUOUS, 0.0, 1.0)
        for step in range(problem.horizon - 1):
            # If op starts at `step`, flexibility toward step+1 requires
            # spare capacity there: sum(peers at step+1) <= cap - 1 when
            # both x[op, step] and flex are 1.
            if peers:
                model.add_constraint(
                    LinExpr.sum(
                        model.var(start_var_name(p.name, step + 1)) for p in peers
                    )
                    + float(capacity) * (model.var(start_var_name(op.name, step)) + flex - 2)
                    <= float(capacity) - 1,
                    name=f"flexcap::{op.name}::{step}",
                )
        # Starting at the last step leaves no later slot.
        model.add_constraint(
            flex + model.var(start_var_name(op.name, problem.horizon - 1)) <= 1,
            name=f"flexlast::{op.name}",
        )
        flex_terms.append(flex.to_expr())
    model.set_objective(LinExpr.sum(flex_terms), sense="max")
    solution = solve(model, method=method, **solver_options)
    if not solution.status.has_solution:
        return SchedulingECResult(None, solution, stats=solution.stats)
    schedule = problem.decode(solution)
    return SchedulingECResult(
        schedule,
        solution,
        slack=schedule_slack(problem, schedule),
        stats=solution.stats,
    )


def preserving_scheduling_ec(
    problem: SchedulingProblem,
    old_schedule: Mapping[str, int],
    preserve: Iterable[str] = (),
    method: str = "exact",
    **solver_options,
) -> SchedulingECResult:
    """Re-schedule maximizing operations that keep their start step."""
    from repro.ilp.solver import solve

    model = problem.to_ilp()
    terms = []
    for op in problem.operations:
        old = old_schedule.get(op.name)
        if old is not None and 0 <= old < problem.horizon:
            terms.append(model.var(start_var_name(op.name, old)).to_expr())
    for name in preserve:
        old = old_schedule.get(name)
        if old is None:
            raise ECError(f"cannot pin operation {name!r}: no old start step")
        model.add_constraint(
            model.var(start_var_name(name, old)).to_expr() >= 1,
            name=f"pin::{name}",
        )
    model.set_objective(LinExpr.sum(terms), sense="max")
    warm = problem.values_from_schedule(old_schedule)
    solution = solve(model, method=method, warm_start=warm, **solver_options)
    if not solution.status.has_solution:
        return SchedulingECResult(None, solution, stats=solution.stats)
    schedule = problem.decode(solution)
    common = [n for n in schedule if n in old_schedule]
    preserved = (
        sum(1 for n in common if schedule[n] == old_schedule[n]) / len(common)
        if common
        else 1.0
    )
    return SchedulingECResult(
        schedule,
        solution,
        preserved_fraction=preserved,
        slack=schedule_slack(problem, schedule),
        stats=solution.stats,
    )
