"""Resource-constrained scheduling as a time-indexed 0-1 ILP.

The classic behavioral-synthesis formulation (the paper cites Gebotys &
Elmasry [2] for this ILP family): unit-latency operations, a precedence
DAG, per-resource-type capacities, and a fixed horizon of control steps.

Variables ``x[op, step]`` select the start step of each operation;
rows enforce exactly-one-start, precedence, and per-step capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping

from repro.errors import ModelError
from repro.ilp.expr import LinExpr
from repro.ilp.model import ILPModel
from repro.ilp.solution import Solution


def start_var_name(op: Hashable, step: int) -> str:
    """ILP variable name for "operation starts at control step"."""
    return f"start::{op}::{step}"


@dataclass(frozen=True)
class Operation:
    """A unit-latency operation bound to a resource type."""

    name: str
    resource: str


@dataclass
class SchedulingProblem:
    """Unit-latency resource-constrained scheduling.

    Args:
        operations: the operations to schedule.
        precedence: (before, after) pairs of operation names.
        capacities: resource type -> units available per control step.
        horizon: number of control steps (steps are ``0..horizon-1``).
    """

    operations: list[Operation]
    precedence: list[tuple[str, str]] = field(default_factory=list)
    capacities: dict[str, int] = field(default_factory=dict)
    horizon: int = 8

    def __post_init__(self) -> None:
        names = [op.name for op in self.operations]
        if len(set(names)) != len(names):
            raise ModelError("duplicate operation names")
        self._by_name = {op.name: op for op in self.operations}
        for before, after in self.precedence:
            if before not in self._by_name or after not in self._by_name:
                raise ModelError(f"precedence ({before!r}, {after!r}) names unknown ops")
        for op in self.operations:
            if op.resource not in self.capacities:
                raise ModelError(f"no capacity declared for resource {op.resource!r}")
        if self.horizon < 1:
            raise ModelError("horizon must be at least one control step")

    @property
    def steps(self) -> range:
        return range(self.horizon)

    def operation(self, name: str) -> Operation:
        try:
            return self._by_name[name]
        except KeyError:
            raise ModelError(f"unknown operation {name!r}") from None

    # ------------------------------------------------------------------
    def to_ilp(self) -> ILPModel:
        """Build the time-indexed scheduling ILP (feasibility form)."""
        model = ILPModel("scheduling")
        for op in self.operations:
            for step in self.steps:
                model.add_binary(start_var_name(op.name, step))
        for op in self.operations:
            row = LinExpr.sum(
                model.var(start_var_name(op.name, s)) for s in self.steps
            )
            model.add_constraint(row.__eq__(1.0), name=f"assign::{op.name}")
        for before, after in self.precedence:
            start_b = LinExpr.sum(
                float(s) * model.var(start_var_name(before, s)) for s in self.steps
            )
            start_a = LinExpr.sum(
                float(s) * model.var(start_var_name(after, s)) for s in self.steps
            )
            model.add_constraint(
                start_a - start_b >= 1.0, name=f"prec::{before}::{after}"
            )
        for resource, capacity in self.capacities.items():
            users = [op for op in self.operations if op.resource == resource]
            for step in self.steps:
                if users:
                    model.add_constraint(
                        LinExpr.sum(
                            model.var(start_var_name(op.name, step)) for op in users
                        )
                        <= float(capacity),
                        name=f"cap::{resource}::{step}",
                    )
        model.set_objective(LinExpr(), sense="min")
        return model

    # ------------------------------------------------------------------
    def decode(self, solution: Solution) -> dict[str, int]:
        """Extract operation -> start step from an ILP solution."""
        schedule: dict[str, int] = {}
        for op in self.operations:
            starts = [
                s
                for s in self.steps
                if solution.rounded(start_var_name(op.name, s)) == 1
            ]
            if len(starts) != 1:
                raise ModelError(f"operation {op.name!r} has {len(starts)} start steps")
            schedule[op.name] = starts[0]
        return schedule

    def values_from_schedule(self, schedule: Mapping[str, int]) -> dict[str, float]:
        """Encode a schedule as ILP values (warm starts)."""
        values: dict[str, float] = {}
        for op in self.operations:
            for step in self.steps:
                values[start_var_name(op.name, step)] = float(
                    schedule.get(op.name) == step
                )
        return values

    def is_valid(self, schedule: Mapping[str, int]) -> bool:
        """True if *schedule* meets assignment, precedence and capacity."""
        for op in self.operations:
            step = schedule.get(op.name)
            if step is None or not 0 <= step < self.horizon:
                return False
        for before, after in self.precedence:
            if schedule[after] < schedule[before] + 1:
                return False
        for resource, capacity in self.capacities.items():
            for step in self.steps:
                used = sum(
                    1
                    for op in self.operations
                    if op.resource == resource and schedule[op.name] == step
                )
                if used > capacity:
                    return False
        return True

    # ------------------------------------------------------------------
    def with_precedence(self, before: str, after: str) -> "SchedulingProblem":
        """Copy with one more precedence edge (the canonical EC)."""
        return SchedulingProblem(
            operations=list(self.operations),
            precedence=[*self.precedence, (before, after)],
            capacities=dict(self.capacities),
            horizon=self.horizon,
        )

    def with_capacity(self, resource: str, capacity: int) -> "SchedulingProblem":
        """Copy with a changed resource budget."""
        caps = dict(self.capacities)
        caps[resource] = capacity
        return SchedulingProblem(
            operations=list(self.operations),
            precedence=list(self.precedence),
            capacities=caps,
            horizon=self.horizon,
        )

    def __repr__(self) -> str:
        return (
            f"SchedulingProblem(ops={len(self.operations)}, "
            f"prec={len(self.precedence)}, horizon={self.horizon})"
        )
