"""Scheduling engineering change — a third EC domain.

The paper's closest prior work (Kirovski & Potkonjak, DAC 1999) handled
EC for *graph coloring and scheduling*; the paper claims its ILP
methodology is "completely general".  This subpackage backs that claim by
porting all three EC components to resource-constrained scheduling (the
behavioral-synthesis formulation: unit-latency operations, precedence
edges, per-type resource capacities, time-indexed 0-1 variables).

* :mod:`repro.scheduling.problem` -- the scheduling ILP;
* :mod:`repro.scheduling.ec` -- enabling / fast / preserving EC for
  schedules (the canonical changes: a new precedence edge, a tighter
  resource budget, a new operation).
"""

from repro.scheduling.problem import Operation, SchedulingProblem
from repro.scheduling.ec import (
    SchedulingECResult,
    enable_scheduling_ec,
    preserving_scheduling_ec,
    schedule_slack,
)

__all__ = [
    "Operation",
    "SchedulingECResult",
    "SchedulingProblem",
    "enable_scheduling_ec",
    "preserving_scheduling_ec",
    "schedule_slack",
]
