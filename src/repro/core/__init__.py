"""The paper's contribution: generic ILP-based engineering change.

Three components, mirroring §4-§7 of the paper:

* :mod:`repro.core.enabling` -- solve the original instance so the
  solution tolerates future changes (k-satisfiability + flip support);
* :mod:`repro.core.fast` -- re-solve only the minimal affected
  sub-instance after a change (Figure 2);
* :mod:`repro.core.preserving` -- re-solve while maximizing (or pinning)
  agreement with the previous solution;
* :mod:`repro.core.change` -- typed change requests;
* :mod:`repro.core.flow` -- the generic EC flow of Figure 1;
* :mod:`repro.core.metrics` -- preserved fractions, flexibility reports.
"""

from repro.core.change import (
    AddClause,
    AddVariable,
    Change,
    ChangeSet,
    RemoveClause,
    RemoveVariable,
)
from repro.core.enabling import (
    EnablingOptions,
    build_enabling_encoding,
    enable_ec,
)
from repro.core.fast import FastECResult, fast_ec, simplify_instance
from repro.core.preserving import (
    PreservingECResult,
    preserving_ec,
    resolve_oblivious,
)
from repro.core.flow import ECFlow
from repro.core.metrics import preserved_fraction

__all__ = [
    "AddClause",
    "AddVariable",
    "Change",
    "ChangeSet",
    "ECFlow",
    "EnablingOptions",
    "FastECResult",
    "PreservingECResult",
    "RemoveClause",
    "RemoveVariable",
    "build_enabling_encoding",
    "enable_ec",
    "fast_ec",
    "preserved_fraction",
    "preserving_ec",
    "resolve_oblivious",
    "simplify_instance",
]
