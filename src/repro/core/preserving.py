"""Preserving EC (§7): re-solve while agreeing with the old solution.

Two modes, matching the paper:

* **maximize** — objective ``max sum_i Z_i`` with ``Z_i = p_i x_i +
  p_{n+i} x_{n+i}``: a variable scores 1 when the new selection matches
  the old polarity.  In the set-cover encoding this is simply *maximize
  the sum of the previously-selected literal variables*.
* **specified** — user-named variables are pinned to their old values with
  hard constraints; the remaining objective may still reward agreement or
  keep the set-cover quality term.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.errors import PreservationError
from repro.ilp.expr import LinExpr
from repro.ilp.solution import Solution, SolveStats
from repro.sat.encoding import SATEncoding, encode_sat, neg_name, pos_name


def build_preserving_encoding(
    modified: CNFFormula,
    original: Assignment,
    preserve: Iterable[int] = (),
    agreement_weight: float = 1.0,
    quality_weight: float = 0.0,
) -> SATEncoding:
    """Encode *modified* with the preserving-EC objective.

    Args:
        modified: the changed formula.
        original: the previous assignment ``p`` (variables the change
            eliminated are ignored; fresh variables have no old value and
            thus no agreement term).
        preserve: variables whose old value is a *hard* requirement
            (the paper's "user specified parts of the solutions").
        agreement_weight: weight of the preserved-assignment count.
        quality_weight: weight of the original set-cover quality term
            (minimized); 0 reproduces the paper's pure preserving ILP.

    Raises:
        PreservationError: if a pinned variable is absent from the
            modified formula or has no value in *original*.
    """
    encoding = encode_sat(modified, minimize_literals=False)
    model = encoding.model
    active = set(modified.variables)

    agreement_terms: list[LinExpr] = []
    for var in modified.variables:
        old = original.get(var)
        if old is None:
            continue
        name = pos_name(var) if old else neg_name(var)
        agreement_terms.append(model.var(name).to_expr())

    for var in preserve:
        if var not in active:
            raise PreservationError(
                f"cannot preserve v{var}: not a variable of the modified formula"
            )
        old = original.get(var)
        if old is None:
            raise PreservationError(
                f"cannot preserve v{var}: no value in the original assignment"
            )
        name = pos_name(var) if old else neg_name(var)
        model.add_constraint(
            model.var(name).to_expr() >= 1, name=f"preserve::{var}"
        )

    objective = LinExpr()
    if agreement_weight:
        objective = objective + agreement_weight * LinExpr.sum(agreement_terms)
    if quality_weight:
        all_lits = LinExpr.sum(
            model.var(nm)
            for var in modified.variables
            for nm in (pos_name(var), neg_name(var))
        )
        objective = objective - quality_weight * all_lits
    model.set_objective(objective, sense="max")
    return encoding


@dataclass
class PreservingECResult:
    """Outcome of a preserving-EC re-solve."""

    assignment: Assignment | None
    solution: Solution | None
    preserved_fraction: float = 0.0
    preserved_count: int = 0
    comparable_variables: int = 0
    stats: SolveStats = field(default_factory=SolveStats)
    wall_time: float = 0.0

    @property
    def succeeded(self) -> bool:
        return self.assignment is not None


def _score(
    modified: CNFFormula, original: Assignment, new: Assignment
) -> tuple[int, int]:
    """(agreements, comparable) over surviving originally-assigned vars."""
    comparable = [v for v in modified.variables if v in original]
    agree = sum(1 for v in comparable if new.get(v) is original[v])
    return agree, len(comparable)


def preserving_ec(
    modified: CNFFormula,
    original: Assignment,
    preserve: Iterable[int] = (),
    method: str = "exact",
    quality_weight: float = 0.0,
    **solver_options,
) -> PreservingECResult:
    """Re-solve *modified* maximizing agreement with *original*.

    Don't-care variables in the new ILP solution are decoded to their old
    values when they had one (a free variable may as well agree), and to
    False otherwise.

    Returns:
        A result whose ``preserved_fraction`` is measured over the
        variables that survive in the modified formula and had an original
        value — the paper's "% of original solution preserved".
    """
    from repro.ilp.solver import solve

    t0 = time.perf_counter()
    encoding = build_preserving_encoding(
        modified,
        original,
        preserve=preserve,
        quality_weight=quality_weight,
    )
    warm = encoding.values_from_assignment(
        original.restricted_to(modified.variables)
    )
    solution = solve(encoding.model, method=method, warm_start=warm, **solver_options)
    if not solution.status.has_solution:
        return PreservingECResult(
            None, solution, stats=solution.stats, wall_time=time.perf_counter() - t0
        )
    new = encoding.decode(solution, default=None)
    for var in modified.variables:
        if var not in new:
            old = original.get(var)
            new[var] = old if old is not None else False
    agree, comparable = _score(modified, original, new)
    return PreservingECResult(
        assignment=new,
        solution=solution,
        preserved_fraction=(agree / comparable) if comparable else 1.0,
        preserved_count=agree,
        comparable_variables=comparable,
        stats=solution.stats,
        wall_time=time.perf_counter() - t0,
    )


def resolve_oblivious(
    modified: CNFFormula,
    original: Assignment,
    method: str = "exact",
    **solver_options,
) -> PreservingECResult:
    """Baseline for Table 3: re-solve with *no* preservation goal.

    The instance is solved with the plain set-cover objective, don't-cares
    decoded to False (the solver has no knowledge of the old assignment),
    and agreement is then measured against *original*.
    """
    from repro.ilp.solver import solve

    t0 = time.perf_counter()
    encoding = encode_sat(modified, minimize_literals=True)
    solution = solve(encoding.model, method=method, **solver_options)
    if not solution.status.has_solution:
        return PreservingECResult(
            None, solution, stats=solution.stats, wall_time=time.perf_counter() - t0
        )
    new = encoding.decode(solution, default=False)
    agree, comparable = _score(modified, original, new)
    return PreservingECResult(
        assignment=new,
        solution=solution,
        preserved_fraction=(agree / comparable) if comparable else 1.0,
        preserved_count=agree,
        comparable_variables=comparable,
        stats=solution.stats,
        wall_time=time.perf_counter() - t0,
    )
