"""Typed engineering-change requests.

§5 classifies changes by their effect: removing clauses or adding
variables *loosens* the instance (the old solution keeps working);
adding clauses or removing variables *tightens* it (a re-solve may be
needed).  :class:`ChangeSet` applies a batch of changes to a formula and
reports which regime the batch falls in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Union

from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula
from repro.errors import ChangeError


@dataclass(frozen=True)
class AddClause:
    """Add a clause — a tightening change."""

    clause: Clause

    tightening = True

    def apply(self, formula: CNFFormula) -> None:
        formula.add_clause(self.clause)


@dataclass(frozen=True)
class RemoveClause:
    """Delete a clause — a loosening change."""

    clause: Clause

    tightening = False

    def apply(self, formula: CNFFormula) -> None:
        formula.remove_clause(self.clause)


@dataclass(frozen=True)
class AddVariable:
    """Introduce a new variable — a loosening change (it starts don't-care)."""

    var: int | None = None

    tightening = False

    def apply(self, formula: CNFFormula) -> None:
        formula.add_variable(self.var)


@dataclass(frozen=True)
class RemoveVariable:
    """Eliminate a variable — a tightening change (clauses lose literals)."""

    var: int

    tightening = True

    def apply(self, formula: CNFFormula) -> None:
        formula.remove_variable(self.var)


Change = Union[AddClause, RemoveClause, AddVariable, RemoveVariable]


@dataclass
class ChangeSet:
    """An ordered batch of changes."""

    changes: list[Change] = field(default_factory=list)

    @classmethod
    def from_changes(cls, changes: Iterable[Change]) -> "ChangeSet":
        return cls(list(changes))

    def add(self, change: Change) -> "ChangeSet":
        """Append a change (chainable)."""
        self.changes.append(change)
        return self

    @property
    def is_loosening_only(self) -> bool:
        """True if no change can invalidate an existing solution."""
        return all(not c.tightening for c in self.changes)

    @property
    def tightening_changes(self) -> list[Change]:
        return [c for c in self.changes if c.tightening]

    def apply_to(self, formula: CNFFormula) -> CNFFormula:
        """Return a modified copy of *formula*.

        Raises:
            ChangeError: if applying any change produced an empty clause
                (a trivially unsatisfiable instance), or a change itself
                was invalid.
        """
        out = formula.copy()
        for change in self.changes:
            change.apply(out)
        if out.has_empty_clause():
            raise ChangeError(
                "change set empties a clause; the modified instance is "
                "trivially unsatisfiable"
            )
        return out

    def __len__(self) -> int:
        return len(self.changes)

    def __iter__(self):
        return iter(self.changes)

    def summary(self) -> str:
        kinds = {
            "+clause": sum(isinstance(c, AddClause) for c in self.changes),
            "-clause": sum(isinstance(c, RemoveClause) for c in self.changes),
            "+var": sum(isinstance(c, AddVariable) for c in self.changes),
            "-var": sum(isinstance(c, RemoveVariable) for c in self.changes),
        }
        return ", ".join(f"{k}:{v}" for k, v in kinds.items() if v)
