"""Enabling EC (§5): solve so the solution tolerates future changes.

The paper's enabling condition, for ``k = 2``: every clause must either be
at least 2-satisfied, or contain another literal that can *flip its
assignment* to satisfy the clause without unsatisfying any other clause
(constraint (7) plus the ``Z``/``Q`` support machinery).

Formulation used here
---------------------

On top of the set-cover encoding (``pos::v`` / ``neg::v`` selection
variables, clause rows, consistency rows) we add, per clause ``c_j``::

    sum_{lit in c_j} x_lit  +  Z_j  >=  k          (the paper's (7))

with a support chain bounding ``Z_j`` from above:

* ``W_l`` (one per literal ``l`` of the instance) — "flipping the variable
  of ``l`` so that ``l`` becomes true breaks nothing":
  for every clause ``c_m`` containing ``comp(l)``::

      sum_{lit in c_m, lit != comp(l)} x_lit  >=  W_l

* ``Z_{j,l}`` (per clause-literal pair) — ``l`` supports ``c_j``::

      Z_{j,l} <= W_l           Z_{j,l} <= 1 - x_l
      Z_j     <= sum_{l in c_j} Z_{j,l}

The paper introduces one ``Z_ijk`` per (literal, clause, supporting
variable) occurrence and auxiliary ``Q`` variables to force ``Z = 0`` when
no flip is possible.  The formulation above is the same polytope expressed
with the flip-safety variable ``W_l`` *shared* across clauses (safety does
not depend on which clause asks for support), which keeps the row count
near-linear; the ``<=`` chain makes the ``Q`` forcing variables
unnecessary because ``Z_j`` is only pushed *up* by (7).  All auxiliaries
may be continuous: with binary selection variables their attainable upper
bounds are 0/1, so integrality is implied.

Support semantics: ``acyclic`` vs ``chained``
---------------------------------------------

With ``support='acyclic'`` (the sound default described above) a flip is
safe only if every clause losing ``comp(l)`` retains an *already selected*
literal.  This one-step guarantee is exactly verifiable, but it is
*infeasible* on rigid structures: in an XOR constraint group (four
width-3 clauses) every satisfying assignment leaves some clause
1-satisfied with no safe flip, so the parity benchmark family admits no
acyclic-enabled solution at ``k = 2``.

The paper's ``Z_ijk`` machinery instead lets a supporting flip itself be
covered by further support ("variable x_i receives support from clause
c_j through variable x_k when x_k flips its value") — support may chain,
and nothing in the ILP forbids two literals supporting each other.
``support='chained'`` reproduces that: the safety rows become

    W_l  <=  sum_{lit in c_m, lit != comp(l)} (x_lit + W_lit)

for every clause ``c_m`` containing ``comp(l)``.  This is feasible on
essentially every instance without unit clauses (matching the paper's
ability to report Table-1 numbers on parity instances) at the price of a
weaker guarantee: chained support certifies a *repair search direction*,
not a one-flip repair.  The ablation benchmark compares both.

Two modes, matching the two EC columns of Table 1:

* ``mode='constraints'`` — (7) is a hard row for every clause wide enough
  to support it ("EC (SC)");
* ``mode='objective'`` — (7) is replaced by binary achievement variables
  ``S_j`` with ``k * S_j <= sum x + Z_j`` and the objective gains
  ``+ weight * sum S_j`` ("EC (OF)": *maximize the number of clauses that
  are at least 2-satisfiable*).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.cnf.literals import complement
from repro.errors import ECError
from repro.ilp.expr import LinExpr
from repro.ilp.model import ILPModel
from repro.ilp.solution import Solution
from repro.ilp.variable import VarType
from repro.sat.encoding import SATEncoding, encode_sat, literal_name


@dataclass
class EnablingOptions:
    """Knobs for enabling EC.

    Attributes:
        k: required satisfaction level (the paper always uses 2).
        mode: ``'constraints'`` (hard rows) or ``'objective'`` (weighted).
        flexibility_weight: objective-mode weight of each flexible clause
            relative to the set-cover quality term.
        exempt_narrow_clauses: in constraint mode, clauses with fewer than
            ``k`` literals cannot reach level ``k`` on their own; when True
            they only need ``|clause|``-satisfaction plus support, when
            False the model may be infeasible (the paper notes enabling
            "can be very expensive or impossible in the general case").
        keep_quality_objective: keep the set-cover minimization as the
            quality term (constraint mode) / first component (objective
            mode); when False the objective is flexibility only.
        support: ``'acyclic'`` (sound one-step flip safety) or
            ``'chained'`` (the paper's transitive support; always feasible
            on unit-free instances but a weaker guarantee).
    """

    k: int = 2
    mode: str = "constraints"
    flexibility_weight: float = 1.0
    exempt_narrow_clauses: bool = True
    keep_quality_objective: bool = True
    support: str = "acyclic"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ECError(f"k must be >= 1, got {self.k}")
        if self.mode not in ("constraints", "objective"):
            raise ECError(f"mode must be 'constraints' or 'objective', got {self.mode!r}")
        if self.support not in ("acyclic", "chained"):
            raise ECError(f"support must be 'acyclic' or 'chained', got {self.support!r}")


def support_variable_name(lit: int) -> str:
    """Name of the shared flip-safety variable ``W_l``."""
    return f"W::{lit}"


def _add_support_machinery(
    model: ILPModel, formula: CNFFormula, support: str = "acyclic"
) -> dict[int, str]:
    """Add the ``W_l`` flip-safety variables and their rows.

    Returns a mapping literal -> W variable name.  Only literals that occur
    in some clause get a variable (a literal absent from the formula never
    needs to supply support).
    """
    occurrences: dict[int, list[int]] = {}
    for index, clause in enumerate(formula.clauses):
        for lit in clause:
            occurrences.setdefault(lit, []).append(index)
    w_names: dict[int, str] = {}
    # First pass creates every W variable so chained rows can reference
    # the W of other literals regardless of ordering.
    for lit in sorted(occurrences, key=lambda l: (abs(l), l < 0)):
        name = support_variable_name(lit)
        model.add_var(name, VarType.CONTINUOUS, 0.0, 1.0)
        w_names[lit] = name
    for lit, name in w_names.items():
        w = model.var(name)
        # Flipping var(lit) to make `lit` true falsifies comp(lit); every
        # clause containing comp(lit) must be satisfied by something else
        # (acyclic), or by something else possibly after further flips
        # (chained -- the paper's transitive Z_ijk support).
        for m_index in occurrences.get(complement(lit), ()):
            clause = formula.clause(m_index)
            others = [l for l in clause if l != complement(lit)]
            if not others:
                model.add_constraint(w <= 0, name=f"Wblock::{lit}::{m_index}")
                continue
            terms = [model.var(literal_name(l)).to_expr() for l in others]
            if support == "chained":
                terms += [
                    model.var(w_names[l]).to_expr() for l in others if l in w_names
                ]
            model.add_constraint(
                LinExpr.sum(terms) >= w, name=f"Wsafe::{lit}::{m_index}"
            )
    return w_names


def build_enabling_encoding(
    formula: CNFFormula, options: EnablingOptions | None = None
) -> SATEncoding:
    """Build the SAT encoding augmented with enabling-EC structure.

    The returned encoding's model contains, besides the base rows:
    ``W::<lit>`` safety variables, ``Zs::<j>::<lit>`` per-clause support,
    ``Z::<j>`` clause support, and (objective mode) binary ``S::<j>``
    achievement variables.
    """
    options = options or EnablingOptions()
    encoding = encode_sat(formula, minimize_literals=True)
    model = encoding.model
    w_names = _add_support_machinery(model, formula, support=options.support)

    achievement_terms: list[LinExpr] = []
    for j, clause in enumerate(formula.clauses):
        z_j = model.add_var(f"Z::{j}", VarType.CONTINUOUS, 0.0, 1.0)
        z_parts = []
        for lit in clause:
            z_jl = model.add_var(f"Zs::{j}::{lit}", VarType.CONTINUOUS, 0.0, 1.0)
            model.add_constraint(
                z_jl <= model.var(w_names[lit]), name=f"sup_safe::{j}::{lit}"
            )
            model.add_constraint(
                z_jl + model.var(literal_name(lit)) <= 1,
                name=f"sup_false::{j}::{lit}",
            )
            z_parts.append(z_jl)
        model.add_constraint(
            LinExpr.sum(z_parts) >= z_j, name=f"sup_any::{j}"
        )
        level = LinExpr.sum(model.var(literal_name(lit)) for lit in clause)
        required = options.k
        if options.exempt_narrow_clauses and len(clause) < options.k:
            required = len(clause)
        if options.mode == "constraints":
            model.add_constraint(level + z_j >= required, name=f"enable::{j}")
        else:
            s_j = model.add_var(f"S::{j}", VarType.BINARY, 0.0, 1.0)
            model.add_constraint(
                float(required) * s_j <= level + z_j, name=f"achieve::{j}"
            )
            achievement_terms.append(s_j.to_expr())

    if options.mode == "objective":
        flexibility = LinExpr.sum(achievement_terms)
        if options.keep_quality_objective:
            # Minimize literals, reward flexible clauses: a single
            # maximization with two weighted components (§4).
            quality = model.objective  # current: min sum x  ==  max -sum x
            model.set_objective(
                options.flexibility_weight * flexibility - quality, sense="max"
            )
        else:
            model.set_objective(flexibility, sense="max")
    elif not options.keep_quality_objective:
        model.set_objective(LinExpr(), sense="min")
    return encoding


@dataclass
class EnablingResult:
    """Outcome of enabling EC."""

    encoding: SATEncoding
    solution: Solution
    assignment: Assignment | None
    options: EnablingOptions

    @property
    def succeeded(self) -> bool:
        return self.assignment is not None


def enable_ec(
    formula: CNFFormula,
    options: EnablingOptions | None = None,
    method: str = "exact",
    **solver_options,
) -> EnablingResult:
    """Solve *formula* with enabling EC and decode the flexible solution.

    Don't-care variables are decoded to False so the result is a total
    assignment (callers comparing flexibility need totality).

    Raises:
        ECError: in constraint mode when the enabling rows make the
            instance infeasible (retry with ``mode='objective'``).
    """
    from repro.ilp.solver import solve

    options = options or EnablingOptions()
    encoding = build_enabling_encoding(formula, options)
    solution = solve(encoding.model, method=method, **solver_options)
    if not solution.status.has_solution:
        if options.mode == "constraints":
            raise ECError(
                "enabling constraints are infeasible for this instance; "
                "retry with EnablingOptions(mode='objective') or "
                "support='chained'"
            )
        return EnablingResult(encoding, solution, None, options)
    assignment = encoding.decode(solution, default=False)
    return EnablingResult(encoding, solution, assignment, options)
