"""The generic ILP-based EC flow (Figure 1 of the paper).

``ECFlow`` wires the pieces together and supports *successive* change
requests (one of the paper's claimed advantages over prior work)::

    flow = ECFlow(formula)
    flow.solve_original(enable=True)          # non-EC or EC solution
    flow.apply_changes(ChangeSet([...]))      # new specification
    flow.resolve(strategy="fast")             # or "preserving"
    flow.apply_changes(ChangeSet([...]))      # and again...
    flow.resolve(strategy="preserving")

Every step is recorded in ``flow.history`` for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.core.change import ChangeSet
from repro.core.enabling import EnablingOptions, enable_ec
from repro.core.fast import FastECResult, fast_ec
from repro.core.preserving import PreservingECResult, preserving_ec
from repro.errors import ECError
from repro.sat.encoding import encode_sat

if TYPE_CHECKING:  # pragma: no cover - typing-only import (cycle guard)
    from repro.engine.engine import PortfolioEngine
    from repro.service.service import SolverService


@dataclass
class FlowStep:
    """One entry of the flow history."""

    kind: str                 # 'solve' | 'enable' | 'change' | 'fast' | 'preserving' | 'portfolio'
    detail: str = ""
    assignment: Assignment | None = None


@dataclass
class ECFlow:
    """Stateful driver for the Figure-1 flow.

    The ``"portfolio"`` strategy routes through the
    :class:`~repro.service.SolverService` facade (created lazily, or
    wrapping an injected ``engine`` — the legacy injection point kept as
    a shim so existing callers and a shared cache still work).
    """

    formula: CNFFormula
    assignment: Assignment | None = None
    enabled: bool = False
    history: list[FlowStep] = field(default_factory=list)
    engine: "PortfolioEngine | None" = None
    service: "SolverService | None" = None

    # ------------------------------------------------------------------
    def solve_original(
        self,
        enable: bool | EnablingOptions = False,
        method: str = "exact",
        **solver_options,
    ) -> Assignment:
        """Solve the original specification (optionally with enabling EC).

        Returns the (EC or non-EC) solution and stores it as the flow's
        current assignment.

        Raises:
            ECError: if the original instance is unsatisfiable.
        """
        from repro.ilp.solver import solve

        if enable:
            options = enable if isinstance(enable, EnablingOptions) else EnablingOptions()
            result = enable_ec(self.formula, options, method=method, **solver_options)
            if not result.succeeded:
                raise ECError("enabling EC failed to find a solution")
            self.assignment = result.assignment
            self.enabled = True
            self.history.append(
                FlowStep("enable", f"mode={options.mode}, k={options.k}", result.assignment)
            )
            return result.assignment

        encoding = encode_sat(self.formula)
        solution = solve(encoding.model, method=method, **solver_options)
        if not solution.status.has_solution:
            raise ECError("original instance is unsatisfiable")
        self.assignment = encoding.decode(solution, default=False)
        self.history.append(FlowStep("solve", f"method={method}", self.assignment))
        return self.assignment

    def set_solution(self, assignment: Assignment) -> None:
        """Adopt an externally produced solution (heuristic, witness, ...)."""
        if not self.formula.is_satisfied(assignment):
            raise ECError("provided assignment does not satisfy the current formula")
        self.assignment = assignment.copy()
        self.history.append(FlowStep("solve", "external", self.assignment))

    # ------------------------------------------------------------------
    def apply_changes(self, changes: ChangeSet | Iterable) -> CNFFormula:
        """Install the new specification (modified formula).

        The previous solution is kept as the EC starting point.  Loosening
        change sets keep the solution valid; tightening ones typically
        require :meth:`resolve`.
        """
        if not isinstance(changes, ChangeSet):
            changes = ChangeSet.from_changes(changes)
        self.formula = changes.apply_to(self.formula)
        self.history.append(FlowStep("change", changes.summary()))
        return self.formula

    # ------------------------------------------------------------------
    def resolve(
        self,
        strategy: str = "fast",
        preserve: Iterable[int] = (),
        method: str = "exact",
        **options,
    ) -> Assignment:
        """Re-solve the modified specification.

        Strategies: ``"fast"`` (re-solve the minimal affected
        sub-instance), ``"preserving"`` (maximize agreement with the
        previous solution), or ``"portfolio"`` (the cached parallel
        engine of :mod:`repro.engine`; accepts ``jobs=``, ``deadline=``,
        and ``seed=`` options, and answers loosening-only changes by
        revalidation without launching any solver).

        Raises:
            ECError: on an unknown strategy, a missing starting solution,
                or an unsatisfiable modified instance.
        """
        if self.assignment is None:
            raise ECError("no starting solution; call solve_original first")
        if strategy == "portfolio":
            jobs = options.pop("jobs", None)
            deadline = options.pop("deadline", None)
            seed = options.pop("seed", None)
            # Validate before touching the service: a rejected call must
            # not leave a lazily-created engine configured from its
            # arguments.
            if options:
                raise ECError(
                    f"unknown portfolio options {sorted(options)} "
                    "(supported: jobs, deadline, seed)"
                )
            from repro.service.requests import SolveRequest

            service = self._ensure_service(jobs=jobs)
            response = service.solve(SolveRequest(
                formula=self.formula, deadline=deadline, seed=seed,
                hint=self.assignment,
            ))
            if response.status == "unsat":
                raise ECError("modified instance is unsatisfiable")
            if response.status != "sat":
                raise ECError(
                    "portfolio engine could not decide the modified instance "
                    "within its budget"
                )
            self.assignment = response.assignment
            self.history.append(
                FlowStep("portfolio", f"source={response.source}",
                         response.assignment)
            )
            return response.assignment
        if strategy == "fast":
            result: FastECResult = fast_ec(
                self.formula, self.assignment, method=method, **options
            )
            if not result.succeeded:
                raise ECError("modified instance is unsatisfiable")
            detail = (
                f"subproblem {result.instance.num_vars} vars / "
                f"{result.instance.num_clauses} clauses"
                + (" (fallback)" if result.fell_back else "")
            )
            self.assignment = result.assignment
            self.history.append(FlowStep("fast", detail, result.assignment))
            return result.assignment
        if strategy == "preserving":
            presult: PreservingECResult = preserving_ec(
                self.formula,
                self.assignment,
                preserve=preserve,
                method=method,
                **options,
            )
            if not presult.succeeded:
                raise ECError("modified instance is unsatisfiable")
            self.assignment = presult.assignment
            self.history.append(
                FlowStep(
                    "preserving",
                    f"preserved {presult.preserved_fraction:.1%}",
                    presult.assignment,
                )
            )
            return presult.assignment
        raise ECError(f"unknown strategy {strategy!r} (fast|preserving|portfolio)")

    # ------------------------------------------------------------------
    def _ensure_service(self, jobs: int | None = None) -> "SolverService":
        """The flow's service facade, created on first use.

        ``jobs`` only takes effect at creation; later resolves reuse the
        existing service.  An engine injected via ``ECFlow(engine=...)``
        is wrapped (to control the line-up or share a cache across
        flows); ``self.engine`` always mirrors the service's engine so
        legacy stats introspection keeps working.
        """
        if self.service is None:
            from repro.engine.config import EngineConfig
            from repro.service.service import SolverService

            if self.engine is not None:
                self.service = SolverService(engine=self.engine)
            else:
                self.service = SolverService(EngineConfig(jobs=jobs))
        self.engine = self.service.engine
        return self.service

    def close(self) -> None:
        """Release the engine's worker pool, if the flow created one.

        Idempotent; an engine injected by the caller is closed too (the
        flow was its only tenant under the legacy contract).
        """
        if self.service is not None:
            self.service.close()
        if self.engine is not None:
            self.engine.close()

    # ------------------------------------------------------------------
    @property
    def is_current_solution_valid(self) -> bool:
        """Does the stored solution satisfy the current formula?"""
        return self.assignment is not None and self.formula.is_satisfied(self.assignment)
