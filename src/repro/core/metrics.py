"""Solution-comparison and EC-quality metrics."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.cnf.analysis import flexibility_report, FlexibilityReport


def preserved_fraction(
    original: Assignment, new: Assignment, over: CNFFormula | None = None
) -> float:
    """Fraction of originally-assigned variables that kept their value.

    Args:
        over: if given, only variables active in this formula count
            (eliminated variables cannot be "preserved" either way).
    """
    if over is not None:
        original = original.restricted_to(over.variables)
    if len(original) == 0:
        return 1.0
    return original.agreement_fraction(new)


@dataclass
class ECComparison:
    """Before/after flexibility comparison used by tests and examples."""

    before: FlexibilityReport
    after: FlexibilityReport

    @property
    def flexibility_gain(self) -> float:
        """Increase in the 2-satisfied clause fraction."""
        return self.after.fraction_2_satisfied - self.before.fraction_2_satisfied

    @property
    def robustness_gain(self) -> float:
        """Increase in elimination robustness."""
        return self.after.robustness - self.before.robustness


def compare_flexibility(
    formula: CNFFormula,
    plain: Assignment,
    enabled: Assignment,
    with_robustness: bool = True,
) -> ECComparison:
    """Flexibility reports for a plain vs an enabling-EC solution."""
    return ECComparison(
        before=flexibility_report(formula, plain, with_robustness=with_robustness),
        after=flexibility_report(formula, enabled, with_robustness=with_robustness),
    )
