"""Fast EC (§6): re-solve only the minimal affected sub-instance.

Figure 2 of the paper, line by line:

1. if the original assignment still satisfies the modified formula, done;
2. mark all unsatisfied clauses; collect their variables into ``V``;
3. grow: any clause containing a variable of ``V`` that is *not* satisfied
   by some variable outside ``V`` is marked and its variables join ``V``;
   repeat until ``V`` stops growing;
4. solve the ILP of the marked clauses over ``V`` (all other variables are
   frozen at their original values);
5. combine the original assignment with the partial new solution.

Loosening changes (added variables, deleted clauses) need no re-solve:
added variables become don't-cares, and clause deletion is an opportunity
to *recover* don't-cares and 2-satisfiability for the next change (the
``recover_flexibility`` option).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cnf.assignment import Assignment
from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula
from repro.cnf.literals import evaluate_literal
from repro.errors import ECError
from repro.ilp.solution import Solution, SolveStats
from repro.sat.encoding import encode_sat


@dataclass
class FastECInstance:
    """The reduced instance produced by the Figure-2 simplification."""

    subformula: CNFFormula
    affected_variables: tuple[int, ...]
    marked_indices: tuple[int, ...]
    already_satisfied: bool = False

    @property
    def num_vars(self) -> int:
        return len(self.affected_variables)

    @property
    def num_clauses(self) -> int:
        return self.subformula.num_clauses


def simplify_instance(
    modified: CNFFormula, original: Assignment
) -> FastECInstance:
    """Figure 2: extract the minimal sub-instance that must be re-solved.

    Args:
        modified: the formula after the EC (``F'`` in the paper).
        original: the previous satisfying assignment ``p``; variables the
            EC eliminated may simply be missing from it, and fresh
            variables are treated as unassigned don't-cares.
    """
    # Restrict p to the surviving variables.
    active = set(modified.variables)
    p = original.restricted_to(active)

    unsat = [
        i
        for i, clause in enumerate(modified.clauses)
        if not clause.is_satisfied(p)
    ]
    if not unsat:
        return FastECInstance(CNFFormula(), (), (), already_satisfied=True)

    marked: set[int] = set(unsat)
    affected: set[int] = set()
    for i in unsat:
        affected.update(modified.clause(i).variables)

    # Grow V to a fixpoint: a clause touching V stays unmarked only if some
    # variable outside V satisfies it (that variable will not move).
    frontier = set(affected)
    while frontier:
        new_vars: set[int] = set()
        candidate_clauses: set[int] = set()
        for var in frontier:
            candidate_clauses.update(modified.clauses_with_variable(var))
        for ci in sorted(candidate_clauses - marked):
            clause = modified.clause(ci)
            outside_support = any(
                abs(lit) not in affected
                and abs(lit) in p
                and evaluate_literal(lit, p[abs(lit)])
                for lit in clause
            )
            if not outside_support:
                marked.add(ci)
                for v in clause.variables:
                    if v not in affected:
                        new_vars.add(v)
        affected |= new_vars
        frontier = new_vars

    sub = CNFFormula()
    marked_sorted = tuple(sorted(marked))
    for ci in marked_sorted:
        # Literals of unaffected variables are false in every marked clause
        # (otherwise the clause would have outside support), so the
        # sub-instance is solved over V only.
        reduced = Clause(
            (lit for lit in modified.clause(ci) if abs(lit) in affected),
            allow_tautology=True,
        )
        if reduced.is_empty():
            raise ECError(f"clause {ci} lost every literal during reduction")
        sub.add_clause(reduced)
    return FastECInstance(sub, tuple(sorted(affected)), marked_sorted)


@dataclass
class FastECResult:
    """Outcome of a fast-EC re-solve."""

    assignment: Assignment | None
    instance: FastECInstance
    solution: Solution | None = None
    fell_back: bool = False           # local re-solve failed; solved full F'
    stats: SolveStats = field(default_factory=SolveStats)
    wall_time: float = 0.0

    @property
    def succeeded(self) -> bool:
        return self.assignment is not None


def fast_ec(
    modified: CNFFormula,
    original: Assignment,
    method: str = "exact",
    allow_fallback: bool = True,
    recover_flexibility: bool = False,
    **solver_options,
) -> FastECResult:
    """Run fast EC: simplify, re-solve the sub-instance, merge.

    Args:
        modified: the changed formula ``F'``.
        original: the previous satisfying assignment ``p``.
        method: ILP method for the sub-instance ('exact' | 'heuristic').
        allow_fallback: when the local sub-instance is unsatisfiable
            (local repair cannot exist), solve the full modified formula
            instead of failing.  The paper assumes localized changes; the
            fallback covers the general case.
        recover_flexibility: after merging, unassign don't-care-able
            variables (those whose value no remaining clause needs) so the
            next EC has more slack — §6's "recover as many DC variables
            from the initial solution as possible".

    Returns:
        A :class:`FastECResult`; ``assignment is None`` only when the
        modified formula is genuinely unsatisfiable.
    """
    from repro.ilp.solver import solve

    t0 = time.perf_counter()
    instance = simplify_instance(modified, original)
    result = FastECResult(assignment=None, instance=instance)
    if instance.already_satisfied:
        merged = original.restricted_to(modified.variables)
        result.assignment = (
            _recover_dont_cares(modified, merged) if recover_flexibility else merged
        )
        result.wall_time = time.perf_counter() - t0
        return result

    encoding = encode_sat(instance.subformula)
    warm = encoding.values_from_assignment(
        original.restricted_to(instance.subformula.variables)
    )
    solution = solve(encoding.model, method=method, warm_start=warm, **solver_options)
    result.solution = solution
    result.stats = solution.stats
    if solution.status.has_solution:
        partial = encoding.decode(solution, default=False)
        merged = original.restricted_to(modified.variables).merged_with(partial)
        if not modified.is_satisfied(merged):
            raise ECError(
                "fast-EC merge does not satisfy the modified formula; "
                "the simplification invariant was violated"
            )
        result.assignment = (
            _recover_dont_cares(modified, merged) if recover_flexibility else merged
        )
        result.wall_time = time.perf_counter() - t0
        return result

    if not allow_fallback:
        result.wall_time = time.perf_counter() - t0
        return result

    # Local repair impossible: solve the full modified instance.
    result.fell_back = True
    full = encode_sat(modified)
    solution = solve(full.model, method=method, **solver_options)
    result.solution = solution
    result.stats = solution.stats
    if solution.status.has_solution:
        result.assignment = full.decode(solution, default=False)
    result.wall_time = time.perf_counter() - t0
    return result


def _recover_dont_cares(formula: CNFFormula, assignment: Assignment) -> Assignment:
    """Greedily unassign variables no clause depends on for satisfaction.

    A variable can become a don't-care when every clause it satisfies is
    also satisfied by another assigned literal.  Processing order is
    deterministic (ascending variable id).
    """
    out = assignment.copy()
    for var in sorted(formula.variables):
        if var not in out:
            continue
        trial = out.copy().unassign(var)
        if all(
            formula.clause(ci).is_satisfied(trial)
            for ci in formula.clauses_with_variable(var)
        ):
            out = trial
    return out
