"""Regenerate Table 2 (fast EC): ``python -m repro.bench.table2``.

Options::

    --tier ci|paper
    --block small|large|all
    --trials N          (paper: 10)
"""

from __future__ import annotations

import argparse

from repro.bench.registry import suite
from repro.bench.runner import run_table2
from repro.bench.tables import format_table2


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Regenerate Table 2")
    parser.add_argument("--tier", choices=("ci", "paper"), default=None)
    parser.add_argument("--block", choices=("small", "large", "all"), default="small")
    parser.add_argument("--trials", type=int, default=10)
    args = parser.parse_args(argv)
    instances = suite(args.block, tier=args.tier)
    rows = run_table2(instances, trials=args.trials)
    print(format_table2(rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
