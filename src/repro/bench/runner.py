"""Per-row experiment drivers for Tables 1-3.

Each ``tableN_row`` function runs the paper's experiment for one benchmark
instance and returns a row record; ``run_tableN`` maps it over a suite.
Runtime columns are wall-clock seconds, with the EC columns additionally
normalized by the original-instance solve time (the paper's "N.R.").
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from statistics import mean, median

from repro.bench.registry import BenchInstance
from repro.cnf.assignment import Assignment
from repro.cnf.mutations import table2_trial, table3_trial
from repro.core.enabling import EnablingOptions, enable_ec
from repro.core.fast import fast_ec
from repro.core.preserving import preserving_ec, resolve_oblivious
from repro.errors import ECError
from repro.sat.encoding import encode_sat

_MIN_TIME = 1e-6  # guards normalization on near-instant solves

#: Per-solve wall-clock budget for exact solves in the harness.  A cut-off
#: solve still yields its incumbent (status FEASIBLE), mirroring how MIP
#: practitioners run CPLEX with a time limit.
EXACT_TIME_LIMIT = 120.0


def _solver_options(method: str) -> dict:
    if method == "exact":
        return {"time_limit": EXACT_TIME_LIMIT}
    return {"stop_on_first_feasible": True}


def _solve_original(
    inst: BenchInstance, method: str | None = None
) -> tuple[Assignment, float]:
    """Solve the unmodified instance; returns (solution, wall seconds)."""
    from repro.ilp.solver import solve

    method = method or inst.solve_method
    t0 = time.perf_counter()
    encoding = encode_sat(inst.formula)
    solution = solve(encoding.model, method=method, **_solver_options(method))
    elapsed = time.perf_counter() - t0
    if not solution.status.has_solution:
        raise ECError(f"original instance {inst.name} did not solve ({solution.status})")
    return encoding.decode(solution, default=False), max(elapsed, _MIN_TIME)


# ----------------------------------------------------------------------
# Table 1 — enabling EC overhead
# ----------------------------------------------------------------------
@dataclass
class Table1Row:
    """One row of Table 1."""

    name: str
    num_vars: int
    num_clauses: int
    orig_runtime: float
    sc_normalized: float          # "EC (SC)" — specified constraints
    of_normalized: float          # "EC (OF)" — objective function
    solver: str = "exact"
    sc_feasible: bool = True


def table1_row(
    inst: BenchInstance,
    support: str = "chained",
    method: str | None = None,
) -> Table1Row:
    """Run the Table-1 experiment: original vs SC-enabled vs OF-enabled.

    ``support='chained'`` matches the paper's transitive support (always
    feasible on unit-free instances); ``'acyclic'`` is the sound variant
    and may make the SC column infeasible (reported via ``sc_feasible``).
    """
    method = method or inst.solve_method
    _, orig = _solve_original(inst, method)

    t0 = time.perf_counter()
    sc_feasible = True
    try:
        enable_ec(
            inst.formula,
            EnablingOptions(mode="constraints", support=support),
            method=method,
        )
    except ECError:
        sc_feasible = False
    sc_time = max(time.perf_counter() - t0, _MIN_TIME)

    t0 = time.perf_counter()
    enable_ec(
        inst.formula,
        EnablingOptions(mode="objective", support=support),
        method=method,
    )
    of_time = max(time.perf_counter() - t0, _MIN_TIME)

    return Table1Row(
        name=inst.name,
        num_vars=inst.num_vars,
        num_clauses=inst.num_clauses,
        orig_runtime=orig,
        sc_normalized=sc_time / orig,
        of_normalized=of_time / orig,
        solver=method,
        sc_feasible=sc_feasible,
    )


def run_table1(instances: list[BenchInstance], **kwargs) -> list[Table1Row]:
    """Table 1 over a suite."""
    return [table1_row(inst, **kwargs) for inst in instances]


# ----------------------------------------------------------------------
# Table 2 — fast EC
# ----------------------------------------------------------------------
@dataclass
class Table2Row:
    """One row of Table 2."""

    name: str
    num_vars: int
    num_clauses: int
    orig_runtime: float
    avg_sub_vars: float
    avg_sub_clauses: float
    new_normalized: float         # avg fast-EC runtime / original runtime
    trials: int = 10
    fallbacks: int = 0
    solver: str = "exact"


def table2_row(
    inst: BenchInstance,
    trials: int = 10,
    num_eliminated: int = 3,
    num_added_clauses: int = 10,
    seed: int = 0,
    method: str | None = None,
) -> Table2Row:
    """Run the Table-2 experiment: 10 trials of (-3 vars, +10 clauses)."""
    method = method or inst.solve_method
    original, orig = _solve_original(inst, method)
    rng = random.Random(seed)
    sub_vars: list[int] = []
    sub_clauses: list[int] = []
    times: list[float] = []
    fallbacks = 0
    for _trial in range(trials):
        modified, _log = table2_trial(
            inst.formula,
            original,
            rng=rng,
            num_eliminated=num_eliminated,
            num_added_clauses=num_added_clauses,
        )
        t0 = time.perf_counter()
        result = fast_ec(modified, original, method="exact")
        times.append(max(time.perf_counter() - t0, _MIN_TIME))
        if not result.succeeded:
            raise ECError(f"fast EC failed on a satisfiable trial of {inst.name}")
        sub_vars.append(result.instance.num_vars)
        sub_clauses.append(result.instance.num_clauses)
        if result.fell_back:
            fallbacks += 1
    return Table2Row(
        name=inst.name,
        num_vars=inst.num_vars,
        num_clauses=inst.num_clauses,
        orig_runtime=orig,
        avg_sub_vars=mean(sub_vars),
        avg_sub_clauses=mean(sub_clauses),
        new_normalized=mean(times) / orig,
        trials=trials,
        fallbacks=fallbacks,
        solver=method,
    )


def run_table2(instances: list[BenchInstance], **kwargs) -> list[Table2Row]:
    """Table 2 over a suite."""
    return [table2_row(inst, **kwargs) for inst in instances]


# ----------------------------------------------------------------------
# Table 3 — preserving EC
# ----------------------------------------------------------------------
@dataclass
class Table3Row:
    """One row of Table 3."""

    name: str
    num_vars: int
    num_clauses: int
    preserved_original: float     # % with oblivious re-solve
    preserved_with_ec: float      # % with preserving EC
    trials: int = 5
    solver: str = "exact"


def table3_row(
    inst: BenchInstance,
    trials: int = 5,
    seed: int = 0,
    method: str | None = None,
) -> Table3Row:
    """Run the Table-3 experiment: +-5 variables, +-5 clauses per trial."""
    method = method or inst.solve_method
    original, _orig = _solve_original(inst, method)
    rng = random.Random(seed)
    plain: list[float] = []
    with_ec: list[float] = []
    for _trial in range(trials):
        modified, _log = table3_trial(inst.formula, original, rng=rng)
        oblivious = resolve_oblivious(modified, original, method=method)
        preserving = preserving_ec(modified, original, method=method)
        if not (oblivious.succeeded and preserving.succeeded):
            raise ECError(f"table-3 trial unsolvable on {inst.name}")
        plain.append(oblivious.preserved_fraction)
        with_ec.append(preserving.preserved_fraction)
    return Table3Row(
        name=inst.name,
        num_vars=inst.num_vars,
        num_clauses=inst.num_clauses,
        preserved_original=100.0 * mean(plain),
        preserved_with_ec=100.0 * mean(with_ec),
        trials=trials,
        solver=method,
    )


def run_table3(instances: list[BenchInstance], **kwargs) -> list[Table3Row]:
    """Table 3 over a suite."""
    return [table3_row(inst, **kwargs) for inst in instances]


# ----------------------------------------------------------------------
# summary helpers shared by the formatters
# ----------------------------------------------------------------------
def summarize(values: list[float]) -> tuple[float, float]:
    """(mean, median), empty-safe."""
    if not values:
        return float("nan"), float("nan")
    return mean(values), median(values)
