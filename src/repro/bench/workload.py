"""Workload benchmark: the load driver's numbers, tracked per PR.

``python -m repro bench workload`` (or ``python -m repro.bench.workload``)
drives the :mod:`repro.workload` scenario generators through the
closed/open-loop runner and records, per scenario:

* **closed-loop throughput and latency percentiles** at worker counts 1
  and 4 (one fresh in-process :class:`~repro.service.service.
  SolverService` per run, so scenarios never warm each other's cache;
  each row is the median-throughput run of ``--repeats`` attempts).
  Closed rows run **pool-bound** (``quick_slice=0``, pre-warmed pool):
  every uncached solve fans out to the shared worker pool, so the
  c=1 → c=4 ratio measures what PR 7 unblocked — concurrent
  distinct-fingerprint races overlapping their pool round trips —
  instead of GIL-serialized in-process quick-slice solving, which is
  structurally flat across client counts on one core;
* the run's **engine/cache counter deltas** (races, cache hits,
  revalidations, batch dedups, transport bytes) — the substrate every
  future scale PR (cache sharding, parallel distinct-fingerprint
  execution, TCP transport) is judged against;
* the full **log-bucketed latency histogram** of each run
  (``latency_histogram`` in every artifact row, the sparse-bucket form
  of :class:`~repro.obs.histogram.LatencyHistogram`), so a regression
  shows up as a shifted distribution, not just three moved percentiles;

plus two suite-level experiments:

* **open-loop** — the ``sat-mixed`` stream offered at a seeded Poisson
  rate derived from its measured closed-loop throughput, reporting
  schedule lateness alongside service latency;
* **record → replay fidelity** — the ``sat-mixed`` stream is recorded
  to a trace and replayed against a *fresh* service; any verdict/
  fingerprint/model mismatch fails the bench (replay fidelity is an
  invariant, not a metric), and the replay's throughput is recorded.

Options::

    --tier ci|paper     stream sizes (default: REPRO_BENCH_SCALE or ci)
    --scenarios A,B     comma-separated subset (default: five scenarios)
    --jobs N            in-process pool width (default 2)
    --seed N            stream seed (default 0)
    --repeats N         closed-row repeats, median kept (default 3)
    --out PATH          also write a JSON artifact (BENCH_workload.json)
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile

from repro.bench.registry import current_tier
from repro.engine.config import EngineConfig
from repro.errors import ReproError
from repro.service.service import SolverService
from repro.workload.runner import (
    LoadReport,
    inprocess_factory,
    replay_trace,
    run_events,
    summarize,
    write_trace_from_run,
)
from repro.workload.scenarios import build_scenario
from repro.workload.trace import read_trace

#: Scenarios benchmarked by default (>= 3 per the acceptance bar).
DEFAULT_SCENARIOS = (
    "sat-mixed",
    "sat-loosening",
    "coloring-churn",
    "scheduling-precedence",
    "tenant-churn",
)

#: (tenants, changes) per tier.  The closed-loop runner pins every
#: session's events to one worker (per-key ordering), so the c=4 rows
#: need at least four tenant streams — fewer would leave workers idle
#: and measure key starvation, not engine concurrency.
_SIZES = {"ci": (6, 8), "paper": (8, 10)}


def bench_run(
    scenario: str,
    *,
    tenants: int,
    changes: int,
    seed: int = 0,
    jobs: int = 2,
    mode: str = "closed",
    concurrency: int = 1,
    rate: float | None = None,
    pool_bound: bool = False,
) -> LoadReport:
    """One scenario run over a fresh in-process service.

    Args:
        pool_bound: disable the quick slice and pre-warm the pool, so
            every uncached solve races over the shared worker pool — the
            configuration whose closed-loop c=1 vs c=4 ratio exposes
            engine-level concurrency (the replay/open-loop experiments
            keep the default engine: fan-out races pick nondeterministic
            winners, which would break byte-level replay fidelity).

    Raises:
        ReproError: any event errored — a load number over a broken run
            would poison the trajectory.
    """
    events = build_scenario(scenario, seed=seed, tenants=tenants, changes=changes)
    config = (
        EngineConfig(jobs=jobs, quick_slice=0.0) if pool_bound
        else EngineConfig(jobs=jobs)
    )
    with SolverService(config) as service:
        if pool_bound:
            service.engine.warm_up()
        factory = inprocess_factory(service)
        before = factory().stats()
        results, wall = run_events(
            events, factory, mode=mode, concurrency=concurrency,
            rate=rate, seed=seed,
        )
        after = factory().stats()
    report = summarize(
        results, wall, scenario=scenario, mode=mode, concurrency=concurrency,
        stats_before=before, stats_after=after,
    )
    if report.errors:
        raise ReproError(
            f"workload bench: {scenario} had {report.errors} errored "
            f"events: {report.error_detail[:3]}"
        )
    return report


def bench_replay_fidelity(
    *, tenants: int, changes: int, seed: int = 0, jobs: int = 2
) -> dict:
    """Record ``sat-mixed``, replay it fresh, demand byte-level fidelity."""
    events = build_scenario(
        "sat-mixed", seed=seed, tenants=tenants, changes=changes
    )
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = os.path.join(tmp, "bench.jsonl")
        with SolverService(EngineConfig(jobs=jobs)) as service:
            results, _wall = run_events(events, inprocess_factory(service))
        recorded = write_trace_from_run(
            trace_path, events, results, meta={"scenario": "sat-mixed"}
        )
        trace = read_trace(trace_path)
        with SolverService(EngineConfig(jobs=jobs)) as service:
            factory = inprocess_factory(service)
            report = replay_trace(trace, factory, stats_target=factory())
    if report.mismatches != 0 or report.errors != 0:
        raise ReproError(
            f"replay fidelity broken: {report.mismatches} mismatches, "
            f"{report.errors} errors — {report.mismatch_detail[:3]}"
        )
    return {
        "records": recorded,
        "replay_throughput": report.throughput,
        "replay_latency": report.latency,
        "mismatches": report.mismatches,
    }


def format_workload_table(reports: list[LoadReport]) -> str:
    """Render the runs as an aligned text table."""
    header = (
        f"{'scenario':<22} {'mode':<6} {'c':>2} {'events':>6} "
        f"{'ev/s':>8} {'p50':>8} {'p99':>8} "
        f"{'races':>5} {'hits':>5} {'reval':>5} {'joins':>5}"
    )
    lines = [header, "-" * len(header)]
    for r in reports:
        engine = (r.counters or {}).get("engine", {})
        lines.append(
            f"{r.scenario:<22} {r.mode:<6} {r.concurrency:>2} {r.events:>6} "
            f"{r.throughput:>8.1f} {r.latency['p50'] * 1e3:>7.2f}m "
            f"{r.latency['p99'] * 1e3:>7.2f}m "
            f"{engine.get('races', 0):>5} {engine.get('cache_hits', 0):>5} "
            f"{engine.get('revalidations', 0):>5} "
            f"{engine.get('inflight_joins', 0):>5}"
        )
    return "\n".join(lines)


def concurrency_ratios(reports: list[LoadReport]) -> dict:
    """c=4 / c=1 closed-loop throughput per scenario (the PR 7 yardstick)."""
    by_scenario: dict[str, dict[int, float]] = {}
    for r in reports:
        if r.mode == "closed":
            by_scenario.setdefault(r.scenario, {})[r.concurrency] = r.throughput
    return {
        scenario: round(points[4] / points[1], 3)
        for scenario, points in by_scenario.items()
        if points.get(1) and points.get(4)
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry: print the table and optionally write the artifact."""
    parser = argparse.ArgumentParser(description="Workload/load-driver bench")
    parser.add_argument("--tier", choices=("ci", "paper"), default=None)
    # Accepted for `repro bench` forwarding parity; workload streams have
    # no small/large block split.
    parser.add_argument("--block", choices=("small", "large", "all"), default=None)
    parser.add_argument(
        "--scenarios", default=",".join(DEFAULT_SCENARIOS),
        help="comma-separated scenario names",
    )
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="closed-row repeats; the median-throughput run is kept "
             "(streams finish in tens of milliseconds, so a single shot "
             "is hostage to scheduler noise)",
    )
    parser.add_argument("--out", default=None, help="write a JSON artifact here")
    args = parser.parse_args(argv)

    tier = args.tier or current_tier()
    tenants, changes = _SIZES[tier]
    scenarios = [s for s in args.scenarios.split(",") if s]

    reports: list[LoadReport] = []
    for scenario in scenarios:
        for concurrency in (1, 4):
            runs = [
                bench_run(
                    scenario, tenants=tenants, changes=changes,
                    seed=args.seed, jobs=args.jobs, concurrency=concurrency,
                    pool_bound=True,
                )
                for _ in range(max(1, args.repeats))
            ]
            runs.sort(key=lambda r: r.throughput)
            reports.append(runs[len(runs) // 2])
    print(format_workload_table(reports))
    ratios = concurrency_ratios(reports)
    if ratios:
        print(
            "c4/c1 throughput: "
            + "  ".join(f"{s}={r:.2f}x" for s, r in sorted(ratios.items()))
        )

    # Open-loop: offer ~1.5x the measured closed-loop throughput of the
    # same default-engine configuration the open run uses (the pool-bound
    # rows above are an order of magnitude slower by design, so deriving
    # the rate from them would make the lateness column meaningless).
    baseline = bench_run(
        scenarios[0], tenants=tenants, changes=changes, seed=args.seed,
        jobs=args.jobs, concurrency=1,
    )
    rate = max(20.0, min(2000.0, 1.5 * baseline.throughput))
    open_report = bench_run(
        scenarios[0], tenants=tenants, changes=changes, seed=args.seed,
        jobs=args.jobs, mode="open", concurrency=1, rate=rate,
    )
    print(
        f"\nopen-loop {open_report.scenario} @ {rate:.0f} ev/s: "
        f"{open_report.throughput:.1f} ev/s through, latency p99 "
        f"{open_report.latency['p99'] * 1e3:.2f}ms, lateness p99 "
        f"{open_report.lateness['p99'] * 1e3:.2f}ms"
    )

    fidelity = bench_replay_fidelity(
        tenants=tenants, changes=changes, seed=args.seed, jobs=args.jobs
    )
    print(
        f"replay fidelity: {fidelity['records']} records, 0 mismatches, "
        f"{fidelity['replay_throughput']:.1f} ev/s replayed"
    )

    if args.out:
        artifact = {
            "bench": "workload",
            "tier": tier,
            "jobs": args.jobs,
            "seed": args.seed,
            "cores": os.cpu_count(),
            "tenants": tenants,
            "changes": changes,
            "closed_loop_pool_bound": True,
            "closed_loop_repeats": max(1, args.repeats),
            "concurrency_ratios": ratios,
            "runs": [r.to_dict() for r in reports],
            "open_loop": {**open_report.to_dict(), "offered_rate": rate},
            "replay": fidelity,
        }
        with open(args.out, "w") as fh:
            json.dump(artifact, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
