"""Workload benchmark: the load driver's numbers, tracked per PR.

``python -m repro bench workload`` (or ``python -m repro.bench.workload``)
drives the :mod:`repro.workload` scenario generators through the
closed/open-loop runner and records, per scenario:

* **closed-loop throughput and latency percentiles** at worker counts 1
  and 4 (one fresh in-process :class:`~repro.service.service.
  SolverService` per run, so scenarios never warm each other's cache);
* the run's **engine/cache counter deltas** (races, cache hits,
  revalidations, batch dedups, transport bytes) — the substrate every
  future scale PR (cache sharding, parallel distinct-fingerprint
  execution, TCP transport) is judged against;
* the full **log-bucketed latency histogram** of each run
  (``latency_histogram`` in every artifact row, the sparse-bucket form
  of :class:`~repro.obs.histogram.LatencyHistogram`), so a regression
  shows up as a shifted distribution, not just three moved percentiles;

plus two suite-level experiments:

* **open-loop** — the ``sat-mixed`` stream offered at a seeded Poisson
  rate derived from its measured closed-loop throughput, reporting
  schedule lateness alongside service latency;
* **record → replay fidelity** — the ``sat-mixed`` stream is recorded
  to a trace and replayed against a *fresh* service; any verdict/
  fingerprint/model mismatch fails the bench (replay fidelity is an
  invariant, not a metric), and the replay's throughput is recorded.

Options::

    --tier ci|paper     stream sizes (default: REPRO_BENCH_SCALE or ci)
    --scenarios A,B     comma-separated subset (default: five scenarios)
    --jobs N            in-process pool width (default 2)
    --seed N            stream seed (default 0)
    --out PATH          also write a JSON artifact (BENCH_workload.json)
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile

from repro.bench.registry import current_tier
from repro.engine.config import EngineConfig
from repro.errors import ReproError
from repro.service.service import SolverService
from repro.workload.runner import (
    LoadReport,
    inprocess_factory,
    replay_trace,
    run_events,
    summarize,
    write_trace_from_run,
)
from repro.workload.scenarios import build_scenario
from repro.workload.trace import read_trace

#: Scenarios benchmarked by default (>= 3 per the acceptance bar).
DEFAULT_SCENARIOS = (
    "sat-mixed",
    "sat-loosening",
    "coloring-churn",
    "scheduling-precedence",
    "tenant-churn",
)

#: (tenants, changes) per tier.
_SIZES = {"ci": (3, 5), "paper": (8, 10)}


def bench_run(
    scenario: str,
    *,
    tenants: int,
    changes: int,
    seed: int = 0,
    jobs: int = 2,
    mode: str = "closed",
    concurrency: int = 1,
    rate: float | None = None,
) -> LoadReport:
    """One scenario run over a fresh in-process service.

    Raises:
        ReproError: any event errored — a load number over a broken run
            would poison the trajectory.
    """
    events = build_scenario(scenario, seed=seed, tenants=tenants, changes=changes)
    with SolverService(EngineConfig(jobs=jobs)) as service:
        factory = inprocess_factory(service)
        before = factory().stats()
        results, wall = run_events(
            events, factory, mode=mode, concurrency=concurrency,
            rate=rate, seed=seed,
        )
        after = factory().stats()
    report = summarize(
        results, wall, scenario=scenario, mode=mode, concurrency=concurrency,
        stats_before=before, stats_after=after,
    )
    if report.errors:
        raise ReproError(
            f"workload bench: {scenario} had {report.errors} errored "
            f"events: {report.error_detail[:3]}"
        )
    return report


def bench_replay_fidelity(
    *, tenants: int, changes: int, seed: int = 0, jobs: int = 2
) -> dict:
    """Record ``sat-mixed``, replay it fresh, demand byte-level fidelity."""
    events = build_scenario(
        "sat-mixed", seed=seed, tenants=tenants, changes=changes
    )
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = os.path.join(tmp, "bench.jsonl")
        with SolverService(EngineConfig(jobs=jobs)) as service:
            results, _wall = run_events(events, inprocess_factory(service))
        recorded = write_trace_from_run(
            trace_path, events, results, meta={"scenario": "sat-mixed"}
        )
        trace = read_trace(trace_path)
        with SolverService(EngineConfig(jobs=jobs)) as service:
            factory = inprocess_factory(service)
            report = replay_trace(trace, factory, stats_target=factory())
    if report.mismatches != 0 or report.errors != 0:
        raise ReproError(
            f"replay fidelity broken: {report.mismatches} mismatches, "
            f"{report.errors} errors — {report.mismatch_detail[:3]}"
        )
    return {
        "records": recorded,
        "replay_throughput": report.throughput,
        "replay_latency": report.latency,
        "mismatches": report.mismatches,
    }


def format_workload_table(reports: list[LoadReport]) -> str:
    """Render the runs as an aligned text table."""
    header = (
        f"{'scenario':<22} {'mode':<6} {'c':>2} {'events':>6} "
        f"{'ev/s':>8} {'p50':>8} {'p99':>8} "
        f"{'races':>5} {'hits':>5} {'reval':>5}"
    )
    lines = [header, "-" * len(header)]
    for r in reports:
        engine = (r.counters or {}).get("engine", {})
        lines.append(
            f"{r.scenario:<22} {r.mode:<6} {r.concurrency:>2} {r.events:>6} "
            f"{r.throughput:>8.1f} {r.latency['p50'] * 1e3:>7.2f}m "
            f"{r.latency['p99'] * 1e3:>7.2f}m "
            f"{engine.get('races', 0):>5} {engine.get('cache_hits', 0):>5} "
            f"{engine.get('revalidations', 0):>5}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry: print the table and optionally write the artifact."""
    parser = argparse.ArgumentParser(description="Workload/load-driver bench")
    parser.add_argument("--tier", choices=("ci", "paper"), default=None)
    # Accepted for `repro bench` forwarding parity; workload streams have
    # no small/large block split.
    parser.add_argument("--block", choices=("small", "large", "all"), default=None)
    parser.add_argument(
        "--scenarios", default=",".join(DEFAULT_SCENARIOS),
        help="comma-separated scenario names",
    )
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None, help="write a JSON artifact here")
    args = parser.parse_args(argv)

    tier = args.tier or current_tier()
    tenants, changes = _SIZES[tier]
    scenarios = [s for s in args.scenarios.split(",") if s]

    reports: list[LoadReport] = []
    for scenario in scenarios:
        for concurrency in (1, 4):
            reports.append(
                bench_run(
                    scenario, tenants=tenants, changes=changes,
                    seed=args.seed, jobs=args.jobs, concurrency=concurrency,
                )
            )
    print(format_workload_table(reports))

    # Open-loop: offer ~1.5x the measured closed-loop throughput so the
    # lateness column actually means something.
    c1 = reports[0]
    rate = max(20.0, min(2000.0, 1.5 * c1.throughput))
    open_report = bench_run(
        scenarios[0], tenants=tenants, changes=changes, seed=args.seed,
        jobs=args.jobs, mode="open", concurrency=1, rate=rate,
    )
    print(
        f"\nopen-loop {open_report.scenario} @ {rate:.0f} ev/s: "
        f"{open_report.throughput:.1f} ev/s through, latency p99 "
        f"{open_report.latency['p99'] * 1e3:.2f}ms, lateness p99 "
        f"{open_report.lateness['p99'] * 1e3:.2f}ms"
    )

    fidelity = bench_replay_fidelity(
        tenants=tenants, changes=changes, seed=args.seed, jobs=args.jobs
    )
    print(
        f"replay fidelity: {fidelity['records']} records, 0 mismatches, "
        f"{fidelity['replay_throughput']:.1f} ev/s replayed"
    )

    if args.out:
        artifact = {
            "bench": "workload",
            "tier": tier,
            "jobs": args.jobs,
            "seed": args.seed,
            "cores": os.cpu_count(),
            "tenants": tenants,
            "changes": changes,
            "runs": [r.to_dict() for r in reports],
            "open_loop": {**open_report.to_dict(), "offered_rate": rate},
            "replay": fidelity,
        }
        with open(args.out, "w") as fh:
            json.dump(artifact, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
