"""Benchmark harness regenerating the paper's Tables 1-3.

* :mod:`repro.bench.registry` -- the instance suite (one entry per table
  row) at two size tiers: ``ci`` (scaled down so the whole suite runs in
  minutes on a laptop) and ``paper`` (the published sizes);
* :mod:`repro.bench.runner` -- the per-row experiment drivers;
* :mod:`repro.bench.tables` -- plain-text table formatting matching the
  paper's layout;
* ``python -m repro.bench.table1`` (2, 3) -- print a regenerated table.

Absolute runtimes are not comparable to the paper's 2002 CPLEX/Pentium-III
setup; every runtime column is *normalized* to the original-instance solve,
as in the paper.
"""

from repro.bench.registry import (
    BenchInstance,
    SUITE_LARGE,
    SUITE_SMALL,
    load_instance,
    suite,
)
from repro.bench.runner import (
    Table1Row,
    Table2Row,
    Table3Row,
    run_table1,
    run_table2,
    run_table3,
    table1_row,
    table2_row,
    table3_row,
)
from repro.bench.tables import format_table1, format_table2, format_table3
from repro.bench.ablations import AblationRow, format_ablations, run_ablations

__all__ = [
    "AblationRow",
    "BenchInstance",
    "format_ablations",
    "run_ablations",
    "SUITE_LARGE",
    "SUITE_SMALL",
    "Table1Row",
    "Table2Row",
    "Table3Row",
    "format_table1",
    "format_table2",
    "format_table3",
    "load_instance",
    "run_table1",
    "run_table2",
    "run_table3",
    "suite",
    "table1_row",
    "table2_row",
    "table3_row",
]
