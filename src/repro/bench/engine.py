"""Engine comparison bench: sequential vs portfolio vs cached-incremental.

``python -m repro.bench.engine`` (or ``python -m repro bench engine``)
runs three experiments per benchmark row:

1. **sequential** — each single solver configuration (DPLL, WalkSAT, the
   paper's exact ILP route) run alone; the per-row minimum is the "best
   single sequential solver" baseline;
2. **portfolio** — the :class:`~repro.engine.engine.PortfolioEngine` with
   a warmed process pool and the cache bypassed, measuring the raw race;
3. **successive-change** — a chain of loosening engineering changes
   re-solved (a) from scratch with the best sequential solver and (b)
   through an :class:`~repro.engine.session.IncrementalSession`, whose
   revalidation path answers in O(clauses).

Options::

    --tier ci|paper     instance sizes (default: REPRO_BENCH_SCALE or ci)
    --block small|large|all
    --rows N            first N rows of the block (default 4)
    --jobs N            portfolio pool width (default 4)
    --rounds N          timing repetitions, best-of (default 3)
    --changes N         successive loosening changes per row (default 8)
    --out PATH          also write a JSON artifact (BENCH_engine.json)
"""

from __future__ import annotations

import argparse
import json
import random
import time
from dataclasses import asdict, dataclass, field

from repro.bench.registry import BenchInstance, suite
from repro.core.change import AddVariable, ChangeSet, RemoveClause
from repro.engine.adapters import DPLLAdapter, ExactILPAdapter, WalkSATAdapter
from repro.engine.engine import PortfolioEngine
from repro.engine.session import IncrementalSession
from repro.errors import ReproError
from repro.sat.dpll import dpll_solve

_MIN_TIME = 1e-9

#: Single-solver baselines raced by the sequential experiment.
_SEQUENTIAL = (DPLLAdapter(), WalkSATAdapter(), ExactILPAdapter())


def _best_of(rounds: int, fn, *args, **kwargs):
    """(best wall seconds, last result) over *rounds* calls."""
    best = float("inf")
    result = None
    for _ in range(max(1, rounds)):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return max(best, _MIN_TIME), result


@dataclass
class EngineBenchRow:
    """One row of the engine comparison."""

    name: str
    num_vars: int
    num_clauses: int
    sequential: dict[str, float] = field(default_factory=dict)
    best_sequential: float = 0.0
    best_solver: str = ""
    portfolio: float = 0.0
    portfolio_winner: str = ""
    portfolio_ratio: float = 0.0          # portfolio / best sequential
    cached_hit: float = 0.0               # repeated-query cache lookup
    scratch_resolve: float = 0.0          # successive changes, from scratch
    incremental_resolve: float = 0.0      # successive changes, via session
    incremental_speedup: float = 0.0
    incremental_solver_calls: int = 0
    changes: int = 0


def bench_row(
    inst: BenchInstance,
    engine: PortfolioEngine,
    rounds: int = 3,
    changes: int = 8,
    seed: int = 0,
) -> EngineBenchRow:
    """Run the three experiments on one benchmark instance."""
    row = EngineBenchRow(inst.name, inst.num_vars, inst.num_clauses)

    # 1. single-solver sequential baselines.
    for adapter in _SEQUENTIAL:
        wall, out = _best_of(
            rounds, adapter.solve, inst.formula, seed=seed
        )
        if out.status == "sat":
            row.sequential[adapter.name] = wall
    if not row.sequential:
        raise ReproError(f"no sequential solver decided {inst.name}")
    row.best_solver = min(row.sequential, key=row.sequential.get)
    row.best_sequential = row.sequential[row.best_solver]

    # 2. the portfolio race (cache bypassed; pool already warm).
    wall, eres = _best_of(
        rounds, engine.solve, inst.formula, seed=seed, use_cache=False
    )
    if eres.status != "sat":
        raise ReproError(f"portfolio did not decide {inst.name}")
    row.portfolio = wall
    row.portfolio_winner = eres.source
    row.portfolio_ratio = row.portfolio / row.best_sequential

    # ... and the repeated-query path through the fingerprint cache.
    engine.solve(inst.formula, seed=seed)               # populate
    row.cached_hit, cres = _best_of(rounds, engine.solve, inst.formula, seed=seed)
    assert cres.from_cache

    # 3. successive-change chain: loosening edits, re-solved K times.
    rng = random.Random(seed)
    session = IncrementalSession(inst.formula, engine=engine)
    session.solve(seed=seed)
    change_sets = []
    working = inst.formula.copy()
    for i in range(changes):
        if working.num_clauses <= 1:
            break
        victim = rng.choice(working.clauses)
        cs = ChangeSet([RemoveClause(victim)])
        if i % 3 == 2:
            cs.add(AddVariable())
        working = cs.apply_to(working)
        change_sets.append(cs)
    row.changes = len(change_sets)

    calls_before = session.solver_calls
    t_inc = 0.0
    scratch_formulas = []
    for cs in change_sets:
        session.apply_changes(cs)
        scratch_formulas.append(session.formula)
        t0 = time.perf_counter()
        session.resolve(seed=seed)
        t_inc += time.perf_counter() - t0
    row.incremental_resolve = max(t_inc, _MIN_TIME)
    row.incremental_solver_calls = session.solver_calls - calls_before

    t_scratch = 0.0
    for modified in scratch_formulas:
        t0 = time.perf_counter()
        res = dpll_solve(modified)
        t_scratch += time.perf_counter() - t0
        assert res.satisfiable
    row.scratch_resolve = max(t_scratch, _MIN_TIME)
    row.incremental_speedup = row.scratch_resolve / row.incremental_resolve
    return row


def run_engine_bench(
    instances: list[BenchInstance],
    jobs: int = 4,
    rounds: int = 3,
    changes: int = 8,
    seed: int = 0,
) -> list[EngineBenchRow]:
    """The comparison over a suite, sharing one warmed engine."""
    with PortfolioEngine(jobs=jobs) as engine:
        engine.warm_up()
        return [
            bench_row(inst, engine, rounds=rounds, changes=changes, seed=seed)
            for inst in instances
        ]


def format_engine_table(rows: list[EngineBenchRow]) -> str:
    """Render the comparison as an aligned text table."""
    header = (
        f"{'instance':<12} {'vars':>5} {'cls':>5} "
        f"{'best-seq':>9} {'(solver)':<14} {'portfolio':>9} {'ratio':>6} "
        f"{'cache-hit':>9} {'inc-speedup':>11}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.name:<12} {r.num_vars:>5} {r.num_clauses:>5} "
            f"{r.best_sequential * 1e3:>8.2f}m {('(' + r.best_solver + ')'):<14} "
            f"{r.portfolio * 1e3:>8.2f}m {r.portfolio_ratio:>6.2f} "
            f"{r.cached_hit * 1e3:>8.3f}m {r.incremental_speedup:>10.1f}x"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry: print the table and optionally write the JSON artifact."""
    parser = argparse.ArgumentParser(description="Engine comparison bench")
    parser.add_argument("--tier", choices=("ci", "paper"), default=None)
    parser.add_argument("--block", choices=("small", "large", "all"), default="small")
    parser.add_argument("--rows", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--changes", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None, help="write a JSON artifact here")
    args = parser.parse_args(argv)

    instances = suite(args.block, tier=args.tier)[: args.rows]
    rows = run_engine_bench(
        instances, jobs=args.jobs, rounds=args.rounds,
        changes=args.changes, seed=args.seed,
    )
    print(format_engine_table(rows))

    total_calls = sum(r.incremental_solver_calls for r in rows)
    print(
        f"\nincremental chains launched {total_calls} solver runs over "
        f"{sum(r.changes for r in rows)} changes (loosening => revalidation)"
    )
    if args.out:
        import os

        artifact = {
            "bench": "engine",
            "tier": args.tier or "ci",
            "jobs": args.jobs,
            "rounds": args.rounds,
            "cores": os.cpu_count(),
            "rows": [asdict(r) for r in rows],
        }
        with open(args.out, "w") as fh:
            json.dump(artifact, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
