"""Engine comparison bench: sequential vs portfolio vs cached-incremental.

``python -m repro.bench.engine`` (or ``python -m repro bench engine``)
runs three experiments per benchmark row:

1. **sequential** — each single solver configuration (CDCL, DPLL,
   WalkSAT, the paper's exact ILP route) run alone; the per-row minimum
   is the "best single sequential solver" baseline;
2. **portfolio** — the :class:`~repro.engine.engine.PortfolioEngine` with
   a warmed process pool and the cache bypassed, measuring the raw race;
3. **successive-change** — a chain of loosening engineering changes
   re-solved (a) from scratch with the best sequential solver and (b)
   through an :class:`~repro.engine.session.IncrementalSession`, whose
   revalidation path answers in O(clauses).

plus two suite-level comparisons isolating clause learning:

4. **tightening chain** — a successive-change chain of clause-adding
   engineering changes that assembles the contradictory dual parity
   system of :func:`repro.cnf.generators.unsat_parity_pair` one XOR
   group at a time; every step is re-solved by chronological DPLL and by
   CDCL (previous solution as phase hint), so the chain ends in the
   UNSAT-heavy regime the paper's EC trials fear most;
5. **UNSAT refutation** — pinned provably-unsatisfiable families (dual
   parity pair, near-threshold random 3-SAT) refuted by both solvers.

and two packed-kernel comparisons (the flat-array substrate):

6. **packed vs object** — per row: (a) each packed-capable solver run
   from a cold object graph (entry re-packs the formula) vs straight
   off a prebuilt :class:`~repro.cnf.packed.PackedCNF`; (b) the
   per-race worker-transport cost — pickled ``CNFFormula`` object graph
   vs ``PackedCNF.to_bytes`` wire bytes, round-tripped (bytes and
   latency); (c) fingerprint maintenance across an 8-change EC chain —
   from-scratch fp-v1 re-hash per edit vs the incrementally maintained
   fp-v2 digest;
7. **batch** — ``PortfolioEngine.solve_many`` over the suite with every
   instance duplicated: one pool warm-up, intra-batch fingerprint
   dedup.

and one service-layer comparison:

8. **service** — (a) multi-tenant throughput: one
   :class:`~repro.service.service.SolverService` hosting a named
   session per instance (solve + loosening change + re-solve, all over
   one shared pool and cache) vs constructing a fresh engine per query;
   (b) persistent-cache hit latency: the suite solved cold through a
   disk-backed service, then re-solved by a *second* service over the
   same cache directory (the daemon-restart story) — every warm query
   must be answered without any solver.

Options::

    --tier ci|paper     instance sizes (default: REPRO_BENCH_SCALE or ci)
    --block small|large|all
    --rows N            first N rows of the block (default 4)
    --jobs N            portfolio pool width (default 4)
    --rounds N          timing repetitions, best-of (default 3)
    --changes N         successive loosening changes per row (default 8)
    --out PATH          also write a JSON artifact (BENCH_engine.json)
"""

from __future__ import annotations

import argparse
import json
import pickle
import random
import time
from dataclasses import asdict, dataclass, field

from repro.bench.registry import BenchInstance, load_instance, suite
from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import parity_pair_steps, random_ksat, unsat_parity_pair
from repro.cnf.packed import PackedCNF
from repro.core.change import AddClause, AddVariable, ChangeSet, RemoveClause
from repro.engine.adapters import (
    CDCLAdapter,
    DPLLAdapter,
    ExactILPAdapter,
    WalkSATAdapter,
)
from repro.engine.engine import PortfolioEngine
from repro.engine.fingerprint import fingerprint, fingerprint_v2
from repro.engine.session import IncrementalSession
from repro.errors import ReproError
from repro.sat.dpll import dpll_solve

_MIN_TIME = 1e-9

#: Single-solver baselines raced by the sequential experiment.
_SEQUENTIAL = (CDCLAdapter(), DPLLAdapter(), WalkSATAdapter(), ExactILPAdapter())

#: Per-step wall-clock cap for the CDCL-vs-DPLL comparisons (a solver
#: that cannot refute within this budget is recorded at the cap).
_VERSUS_DEADLINE = 60.0


def _best_of(rounds: int, fn, *args, **kwargs):
    """(best wall seconds, last result) over *rounds* calls."""
    best = float("inf")
    result = None
    for _ in range(max(1, rounds)):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return max(best, _MIN_TIME), result


@dataclass
class EngineBenchRow:
    """One row of the engine comparison."""

    name: str
    num_vars: int
    num_clauses: int
    sequential: dict[str, float] = field(default_factory=dict)
    best_sequential: float = 0.0
    best_solver: str = ""
    portfolio: float = 0.0
    portfolio_winner: str = ""
    portfolio_ratio: float = 0.0          # portfolio / best sequential
    cached_hit: float = 0.0               # repeated-query cache lookup
    scratch_resolve: float = 0.0          # successive changes, from scratch
    incremental_resolve: float = 0.0      # successive changes, via session
    incremental_speedup: float = 0.0
    incremental_solver_calls: int = 0
    changes: int = 0


def bench_row(
    inst: BenchInstance,
    engine: PortfolioEngine,
    rounds: int = 3,
    changes: int = 8,
    seed: int = 0,
) -> EngineBenchRow:
    """Run the three experiments on one benchmark instance."""
    row = EngineBenchRow(inst.name, inst.num_vars, inst.num_clauses)

    # 1. single-solver sequential baselines.
    for adapter in _SEQUENTIAL:
        wall, out = _best_of(
            rounds, adapter.solve, inst.formula, seed=seed
        )
        if out.status == "sat":
            row.sequential[adapter.name] = wall
    if not row.sequential:
        raise ReproError(f"no sequential solver decided {inst.name}")
    row.best_solver = min(row.sequential, key=row.sequential.get)
    row.best_sequential = row.sequential[row.best_solver]

    # 2. the portfolio race (cache bypassed; pool already warm).
    wall, eres = _best_of(
        rounds, engine.solve, inst.formula, seed=seed, use_cache=False
    )
    if eres.status != "sat":
        raise ReproError(f"portfolio did not decide {inst.name}")
    row.portfolio = wall
    row.portfolio_winner = eres.source
    row.portfolio_ratio = row.portfolio / row.best_sequential

    # ... and the repeated-query path through the fingerprint cache.
    engine.solve(inst.formula, seed=seed)               # populate
    row.cached_hit, cres = _best_of(rounds, engine.solve, inst.formula, seed=seed)
    assert cres.from_cache

    # 3. successive-change chain: loosening edits, re-solved K times.
    rng = random.Random(seed)
    session = IncrementalSession(inst.formula, engine=engine)
    session.solve(seed=seed)
    change_sets = []
    working = inst.formula.copy()
    for i in range(changes):
        if working.num_clauses <= 1:
            break
        victim = rng.choice(working.clauses)
        cs = ChangeSet([RemoveClause(victim)])
        if i % 3 == 2:
            cs.add(AddVariable())
        working = cs.apply_to(working)
        change_sets.append(cs)
    row.changes = len(change_sets)

    calls_before = session.solver_calls
    t_inc = 0.0
    scratch_formulas = []
    for cs in change_sets:
        session.apply_changes(cs)
        scratch_formulas.append(session.formula)
        t0 = time.perf_counter()
        session.resolve(seed=seed)
        t_inc += time.perf_counter() - t0
    row.incremental_resolve = max(t_inc, _MIN_TIME)
    row.incremental_solver_calls = session.solver_calls - calls_before

    t_scratch = 0.0
    for modified in scratch_formulas:
        t0 = time.perf_counter()
        res = dpll_solve(modified)
        t_scratch += time.perf_counter() - t0
        assert res.satisfiable
    row.scratch_resolve = max(t_scratch, _MIN_TIME)
    row.incremental_speedup = row.scratch_resolve / row.incremental_resolve
    return row


@dataclass
class VersusRow:
    """One CDCL-vs-DPLL comparison (chain step sum or one refutation)."""

    name: str
    num_vars: int
    num_clauses: int
    dpll: float = 0.0
    cdcl: float = 0.0
    cdcl_speedup: float = 0.0            # dpll / cdcl
    dpll_verdict: str = ""
    cdcl_verdict: str = ""
    steps: int = 0                        # > 0 only for change chains


def parity_change_chain(
    num_inputs: int, seed: int = 0
) -> tuple[CNFFormula, Assignment, list[ChangeSet]]:
    """A tightening EC chain ending in the dual-parity contradiction.

    The base instance carries one complete XOR accumulator chain over
    *num_inputs* inputs plus its final parity unit — satisfiable, with a
    planted witness.  Each :class:`ChangeSet` then adds one XOR group of
    a second accumulator chain over the same inputs, and the last change
    asserts the opposite final parity, tipping the instance into UNSAT.
    Applying every change set reproduces
    :func:`repro.cnf.generators.unsat_parity_pair` exactly (both wrap
    :func:`repro.cnf.generators.parity_pair_steps`).

    Returns:
        (base formula, witness for the base, ordered change sets).
    """
    base, witness, groups = parity_pair_steps(num_inputs, rng=seed)
    changes = [ChangeSet([AddClause(cl) for cl in group]) for group in groups]
    return base, witness, changes


def _timed_verdict(adapter, formula, hint, seed: int) -> tuple[float, str]:
    """(wall seconds, status) for one capped adapter run."""
    t0 = time.perf_counter()
    out = adapter.solve(formula, deadline=_VERSUS_DEADLINE, seed=seed, hint=hint)
    return max(time.perf_counter() - t0, _MIN_TIME), out.status


def bench_tightening_chain(num_inputs: int, seed: int = 0) -> VersusRow:
    """Experiment 4: re-solve every chain step with DPLL and with CDCL.

    Both solvers see identical formulas and the same (increasingly stale)
    witness hint; the final steps are where clause learning pays — the
    modified instance is unsatisfiable and chronological DPLL re-derives
    the same parity conflict exponentially often.
    """
    base, witness, changes = parity_change_chain(num_inputs, seed=seed)
    row = VersusRow(f"ec-chain-k{num_inputs}", 0, 0, steps=len(changes))
    for adapter in (DPLLAdapter(), CDCLAdapter()):
        formula = base
        total = 0.0
        verdict = ""
        for cs in changes:
            formula = cs.apply_to(formula)
            wall, verdict = _timed_verdict(adapter, formula, witness, seed)
            total += wall
        if isinstance(adapter, DPLLAdapter):
            row.dpll, row.dpll_verdict = total, verdict
        else:
            row.cdcl, row.cdcl_verdict = total, verdict
        row.num_vars = formula.num_vars
        row.num_clauses = formula.num_clauses
    if row.cdcl_verdict != "unsat":
        # A censored (capped) CDCL time would fake the speedup this bench
        # exists to guard; fail loudly instead.
        raise ReproError(
            f"CDCL failed to refute the final {row.name} step within the cap"
        )
    row.cdcl_speedup = row.dpll / row.cdcl
    return row


def unsat_family_instances(tier: str) -> list[tuple[str, CNFFormula]]:
    """The pinned provably-UNSAT comparison instances for a tier."""
    if tier == "paper":
        pairs = [
            ("par-unsat-k20", unsat_parity_pair(20, rng=1)),
            ("rand-unsat-150", random_ksat(150, 690, k=3, rng=2)),
        ]
    else:
        pairs = [
            ("par-unsat-k14", unsat_parity_pair(14, rng=1)),
            ("rand-unsat-110", random_ksat(110, 510, k=3, rng=2)),
        ]
    return pairs


def bench_unsat_row(name: str, formula: CNFFormula, seed: int = 0) -> VersusRow:
    """Experiment 5: one UNSAT-family refutation, DPLL vs CDCL."""
    row = VersusRow(name, formula.num_vars, formula.num_clauses)
    row.dpll, row.dpll_verdict = _timed_verdict(DPLLAdapter(), formula, None, seed)
    row.cdcl, row.cdcl_verdict = _timed_verdict(CDCLAdapter(), formula, None, seed)
    if row.cdcl_verdict != "unsat":
        raise ReproError(f"CDCL failed to refute {name} within the cap")
    row.cdcl_speedup = row.dpll / row.cdcl
    return row


#: Packed-capable solvers compared in experiment 6.
_PACKED_SOLVERS = (CDCLAdapter(), DPLLAdapter(), WalkSATAdapter())


@dataclass
class PackedRow:
    """One packed-vs-object comparison row (experiment 6)."""

    name: str
    num_vars: int
    num_clauses: int
    #: Per-solver wall seconds: cold object graph (entry re-packs) vs a
    #: prebuilt packed kernel, and their ratio.
    solver_object: dict[str, float] = field(default_factory=dict)
    solver_packed: dict[str, float] = field(default_factory=dict)
    solver_speedup: dict[str, float] = field(default_factory=dict)
    #: Per-race worker-transport cost: pickled object graph vs wire bytes.
    transport_pickle_bytes: int = 0
    transport_packed_bytes: int = 0
    transport_bytes_ratio: float = 0.0     # pickle / packed
    transport_pickle_time: float = 0.0     # dumps + loads round trip
    transport_packed_time: float = 0.0     # to_bytes + from_bytes round trip
    transport_speedup: float = 0.0         # pickle time / packed time
    #: Fingerprint maintenance across an EC change chain: per-edit
    #: from-scratch fp-v1 re-hash vs the incrementally maintained fp-v2.
    fp_changes: int = 0
    fp_scratch_time: float = 0.0
    fp_incremental_time: float = 0.0
    fp_speedup: float = 0.0


def _fp_change_chain(
    base: CNFFormula, changes: int, rng: random.Random
) -> list[ChangeSet]:
    """An EC chain alternating clause removals and random clause adds."""
    from repro.cnf.clause import Clause

    sets: list[ChangeSet] = []
    working = base.copy()
    for i in range(changes):
        if i % 2 == 0 and working.num_clauses > 1:
            cs = ChangeSet([RemoveClause(rng.choice(working.clauses))])
        else:
            vs = rng.sample(list(working.variables), k=min(3, working.num_vars))
            cs = ChangeSet(
                [AddClause(Clause(v if rng.random() < 0.5 else -v for v in vs))]
            )
        working = cs.apply_to(working)
        sets.append(cs)
    return sets


def bench_packed_row(
    inst: BenchInstance, rounds: int = 3, changes: int = 8, seed: int = 0
) -> PackedRow:
    """Experiment 6 on one instance (loaded fresh, so nothing is pre-packed)."""
    row = PackedRow(inst.name, inst.num_vars, inst.num_clauses)

    # (a) per-solver solve time: cold object graph vs prebuilt kernel.
    # A fresh formula per round keeps the object path honest — the entry
    # wrapper re-packs it, exactly what every pre-kernel solve paid.
    packed = inst.formula.packed()
    for adapter in _PACKED_SOLVERS:
        colds = [CNFFormula(inst.formula.clauses) for _ in range(max(1, rounds))]
        t_obj = float("inf")
        for cold in colds:
            t0 = time.perf_counter()
            adapter.solve(cold, seed=seed)
            t_obj = min(t_obj, time.perf_counter() - t0)
        t_pak, _ = _best_of(rounds, adapter.solve_packed, packed, seed=seed)
        row.solver_object[adapter.name] = max(t_obj, _MIN_TIME)
        row.solver_packed[adapter.name] = t_pak
        row.solver_speedup[adapter.name] = row.solver_object[adapter.name] / t_pak

    # (b) worker-transport cost: what one racer receives per race.  The
    # object path pickles the clause-object graph (pre-kernel wire
    # format); the packed path ships raw array bytes.
    cold = CNFFormula(inst.formula.clauses)
    blob = pickle.dumps(cold)
    payload = packed.to_bytes()
    row.transport_pickle_bytes = len(blob)
    row.transport_packed_bytes = len(payload)
    row.transport_bytes_ratio = len(blob) / len(payload)
    row.transport_pickle_time, _ = _best_of(
        rounds, lambda: pickle.loads(pickle.dumps(cold))
    )
    row.transport_packed_time, _ = _best_of(
        rounds, lambda: PackedCNF.from_bytes(packed.to_bytes())
    )
    row.transport_speedup = row.transport_pickle_time / row.transport_packed_time

    # (c) fingerprint maintenance across an EC change chain: re-hash the
    # whole clause set per edit (scratch) vs the incrementally maintained
    # per-clause digest combine (fp-v2).
    chain = _fp_change_chain(inst.formula, changes, random.Random(seed))
    row.fp_changes = len(chain)
    t_scratch = float("inf")
    t_inc = float("inf")
    for _ in range(max(1, rounds)):
        scratch = CNFFormula(inst.formula.clauses)
        t0 = time.perf_counter()
        for cs in chain:
            scratch = cs.apply_to(scratch)
            fingerprint(scratch)
        t_scratch = min(t_scratch, time.perf_counter() - t0)

        inc = CNFFormula(inst.formula.clauses)
        fingerprint_v2(inc)                 # prime kernel + digest state
        t0 = time.perf_counter()
        for cs in chain:
            inc = cs.apply_to(inc)
            fingerprint_v2(inc)
        t_inc = min(t_inc, time.perf_counter() - t0)
    row.fp_scratch_time = max(t_scratch, _MIN_TIME)
    row.fp_incremental_time = max(t_inc, _MIN_TIME)
    row.fp_speedup = row.fp_scratch_time / row.fp_incremental_time
    return row


def run_packed_bench(
    names: list[str], tier: str, rounds: int = 3, changes: int = 8, seed: int = 0
) -> list[PackedRow]:
    """Experiment 6 over freshly loaded instances (no warm kernels)."""
    return [
        bench_packed_row(
            load_instance(name, tier), rounds=rounds, changes=changes, seed=seed
        )
        for name in names
    ]


def bench_batch(
    instances: list[BenchInstance], jobs: int = 4, seed: int = 0
) -> dict:
    """Experiment 7: ``solve_many`` over the suite with every row doubled."""
    formulas: list[CNFFormula] = []
    for inst in instances:
        formulas.append(CNFFormula(inst.formula.clauses))
        formulas.append(CNFFormula(inst.formula.clauses))   # intra-batch dup
    with PortfolioEngine(jobs=jobs) as engine:
        t0 = time.perf_counter()
        results = engine.solve_many(formulas, seed=seed)
        wall = time.perf_counter() - t0
        return {
            "instances": len(formulas),
            "wall_time": wall,
            "races": engine.stats.races,
            "cache_hits": engine.stats.cache_hits,
            "batch_dedups": engine.stats.batch_dedups,
            "undecided": sum(1 for r in results if r.status == "unknown"),
        }


def bench_service(
    instances: list[BenchInstance], jobs: int = 4, seed: int = 0
) -> dict:
    """Experiment 8: the service layer (see the module docstring)."""
    import tempfile

    from repro.core.change import RemoveClause
    from repro.engine.config import EngineConfig
    from repro.service.requests import ChangeRequest, SolveRequest
    from repro.service.service import SolverService

    # (a) shared pool: one service, one named session per instance, each
    # tenant running solve -> loosening change -> re-solve.
    t0 = time.perf_counter()
    with SolverService(EngineConfig(jobs=jobs)) as service:
        for i, inst in enumerate(instances):
            name = f"tenant-{i}"
            service.solve(SolveRequest(
                formula=CNFFormula(inst.formula.clauses), session=name,
                seed=seed,
            ))
            victim = service.session(name).formula.clauses[0]
            service.change(ChangeRequest(
                name, ChangeSet([RemoveClause(victim)]), seed=seed,
            ))
        shared_races = service.engine.stats.races
    shared_wall = max(time.perf_counter() - t0, _MIN_TIME)

    # ... vs a fresh engine per query (what per-call construction costs:
    # no shared cache, no shared pool, the pre-service default).
    t0 = time.perf_counter()
    for inst in instances:
        original = CNFFormula(inst.formula.clauses)
        with PortfolioEngine(jobs=jobs) as engine:
            engine.solve(original, seed=seed)
        loosened = original.copy()
        loosened.remove_clause_at(0)
        with PortfolioEngine(jobs=jobs) as engine:
            engine.solve(loosened, seed=seed)
    percall_wall = max(time.perf_counter() - t0, _MIN_TIME)

    # (b) persistent backend: cold solves, then a second service over the
    # same cache directory — the daemon-restart path must be hit-only.
    with tempfile.TemporaryDirectory() as tmp:
        t0 = time.perf_counter()
        with SolverService(EngineConfig(
            jobs=jobs, cache="disk", cache_dir=tmp
        )) as service:
            for inst in instances:
                service.solve(SolveRequest(
                    formula=CNFFormula(inst.formula.clauses), seed=seed
                ))
        cold_wall = max(time.perf_counter() - t0, _MIN_TIME)

        t0 = time.perf_counter()
        with SolverService(EngineConfig(
            jobs=jobs, cache="disk", cache_dir=tmp
        )) as service:
            for inst in instances:
                service.solve(SolveRequest(
                    formula=CNFFormula(inst.formula.clauses), seed=seed
                ))
            disk_hits = service.engine.cache.stats.hits
            warm_solver_calls = service.engine.stats.solver_calls
        hit_wall = max(time.perf_counter() - t0, _MIN_TIME)
    if warm_solver_calls:
        raise ReproError(
            "disk-backed re-solve launched solvers; the persistent cache "
            "is not serving across service restarts"
        )

    return {
        "sessions": len(instances),
        "shared_wall": shared_wall,
        "shared_races": shared_races,
        "percall_wall": percall_wall,
        "shared_speedup": percall_wall / shared_wall,
        "disk_cold_wall": cold_wall,
        "disk_hit_wall": hit_wall,
        "disk_hits": disk_hits,
        "disk_speedup": cold_wall / hit_wall,
    }


def format_packed_table(rows: list[PackedRow]) -> str:
    """Render the packed-vs-object comparison as an aligned text table."""
    header = (
        f"{'packed-vs-object':<14} {'vars':>5} {'cls':>5} "
        f"{'cdcl':>6} {'dpll':>6} {'wsat':>6} "
        f"{'wire-x':>7} {'wire-t':>7} {'fp-x':>7}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.name:<14} {r.num_vars:>5} {r.num_clauses:>5} "
            f"{r.solver_speedup.get('cdcl', 0):>5.1f}x "
            f"{r.solver_speedup.get('dpll', 0):>5.1f}x "
            f"{r.solver_speedup.get('walksat', 0):>5.1f}x "
            f"{r.transport_bytes_ratio:>6.1f}x "
            f"{r.transport_speedup:>6.1f}x "
            f"{r.fp_speedup:>6.1f}x"
        )
    return "\n".join(lines)


def run_engine_bench(
    instances: list[BenchInstance],
    jobs: int = 4,
    rounds: int = 3,
    changes: int = 8,
    seed: int = 0,
) -> list[EngineBenchRow]:
    """The comparison over a suite, sharing one warmed engine."""
    with PortfolioEngine(jobs=jobs) as engine:
        engine.warm_up()
        return [
            bench_row(inst, engine, rounds=rounds, changes=changes, seed=seed)
            for inst in instances
        ]


def format_versus_table(rows: list[VersusRow], title: str) -> str:
    """Render the CDCL-vs-DPLL comparisons as an aligned text table."""
    header = (
        f"{title:<18} {'vars':>5} {'cls':>6} {'steps':>5} "
        f"{'dpll':>9} {'cdcl':>9} {'cdcl-speedup':>12}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.name:<18} {r.num_vars:>5} {r.num_clauses:>6} "
            f"{(r.steps or '-'):>5} "
            f"{r.dpll * 1e3:>8.2f}m {r.cdcl * 1e3:>8.2f}m "
            f"{r.cdcl_speedup:>11.1f}x"
        )
    return "\n".join(lines)


def format_engine_table(rows: list[EngineBenchRow]) -> str:
    """Render the comparison as an aligned text table."""
    header = (
        f"{'instance':<12} {'vars':>5} {'cls':>5} "
        f"{'best-seq':>9} {'(solver)':<14} {'portfolio':>9} {'ratio':>6} "
        f"{'cache-hit':>9} {'inc-speedup':>11}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.name:<12} {r.num_vars:>5} {r.num_clauses:>5} "
            f"{r.best_sequential * 1e3:>8.2f}m {('(' + r.best_solver + ')'):<14} "
            f"{r.portfolio * 1e3:>8.2f}m {r.portfolio_ratio:>6.2f} "
            f"{r.cached_hit * 1e3:>8.3f}m {r.incremental_speedup:>10.1f}x"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry: print the table and optionally write the JSON artifact."""
    parser = argparse.ArgumentParser(description="Engine comparison bench")
    parser.add_argument("--tier", choices=("ci", "paper"), default=None)
    parser.add_argument("--block", choices=("small", "large", "all"), default="small")
    parser.add_argument("--rows", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--changes", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None, help="write a JSON artifact here")
    args = parser.parse_args(argv)

    instances = suite(args.block, tier=args.tier)[: args.rows]
    rows = run_engine_bench(
        instances, jobs=args.jobs, rounds=args.rounds,
        changes=args.changes, seed=args.seed,
    )
    print(format_engine_table(rows))

    total_calls = sum(r.incremental_solver_calls for r in rows)
    print(
        f"\nincremental chains launched {total_calls} solver runs over "
        f"{sum(r.changes for r in rows)} changes (loosening => revalidation)"
    )

    # Experiments 4 + 5: clause learning vs chronological backtracking.
    from repro.bench.registry import current_tier

    tier = args.tier or current_tier()
    chain_inputs = 22 if tier == "paper" else 16
    chain_row = bench_tightening_chain(chain_inputs, seed=args.seed)
    unsat_rows = [
        bench_unsat_row(name, formula, seed=args.seed)
        for name, formula in unsat_family_instances(tier)
    ]
    print()
    print(format_versus_table([chain_row], "tightening-chain"))
    print()
    print(format_versus_table(unsat_rows, "unsat-family"))

    # Experiments 6 + 7: the packed flat-array substrate.
    packed_names = [inst.name for inst in instances]
    packed_rows = run_packed_bench(
        packed_names, tier, rounds=args.rounds, changes=args.changes,
        seed=args.seed,
    )
    print()
    print(format_packed_table(packed_rows))
    batch = bench_batch(instances, jobs=args.jobs, seed=args.seed)
    print(
        f"\nbatch: {batch['instances']} queries -> {batch['races']} races, "
        f"{batch['batch_dedups']} intra-batch dedups, "
        f"{batch['cache_hits']} cache hits, {batch['wall_time']:.3f}s"
    )

    # Experiment 8: the service layer (shared pool + persistent cache).
    service = bench_service(instances, jobs=args.jobs, seed=args.seed)
    print(
        f"\nservice: {service['sessions']} tenants, shared-pool "
        f"{service['shared_wall']:.3f}s vs per-call "
        f"{service['percall_wall']:.3f}s "
        f"({service['shared_speedup']:.1f}x); disk-cache hits "
        f"{service['disk_hit_wall'] * 1e3:.1f}ms vs cold "
        f"{service['disk_cold_wall'] * 1e3:.1f}ms "
        f"({service['disk_speedup']:.1f}x, {service['disk_hits']} hits)"
    )
    if args.out:
        import os

        artifact = {
            "bench": "engine",
            "tier": tier,
            "jobs": args.jobs,
            "rounds": args.rounds,
            "cores": os.cpu_count(),
            "rows": [asdict(r) for r in rows],
            "tightening_chain": asdict(chain_row),
            "unsat_rows": [asdict(r) for r in unsat_rows],
            "packed_rows": [asdict(r) for r in packed_rows],
            "batch": batch,
            "service": service,
        }
        with open(args.out, "w") as fh:
            json.dump(artifact, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
