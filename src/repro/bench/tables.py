"""Plain-text formatting of the regenerated tables (paper layout)."""

from __future__ import annotations

from repro.bench.runner import (
    Table1Row,
    Table2Row,
    Table3Row,
    summarize,
)


def _rule(widths: list[int]) -> str:
    return "-" * (sum(widths) + 2 * (len(widths) - 1))


def format_table1(rows: list[Table1Row], title: str | None = None) -> str:
    """Render Table 1: enabling-EC normalized runtimes."""
    title = title or "Table 1: Experimental Results for Enabling EC on SAT"
    header = f"{'Instance':<12} {'#Vars':>6} {'#Clauses':>8} {'Orig(s)':>10} {'EC(SC) N.R.':>12} {'EC(OF) N.R.':>12}"
    lines = [title, header, "-" * len(header)]
    for row in rows:
        sc = f"{row.sc_normalized:.2f}" + ("" if row.sc_feasible else "*")
        lines.append(
            f"{row.name:<12} {row.num_vars:>6} {row.num_clauses:>8} "
            f"{row.orig_runtime:>10.4f} {sc:>12} {row.of_normalized:>12.2f}"
        )
    sc_mean, sc_med = summarize([r.sc_normalized for r in rows])
    of_mean, of_med = summarize([r.of_normalized for r in rows])
    lines.append("-" * len(header))
    lines.append(
        f"{'average':<12} {'-':>6} {'-':>8} {'-':>10} {sc_mean:>12.2f} {of_mean:>12.2f}"
    )
    lines.append(
        f"{'median':<12} {'-':>6} {'-':>8} {'-':>10} {sc_med:>12.2f} {of_med:>12.2f}"
    )
    if any(not r.sc_feasible for r in rows):
        lines.append("* SC constraints infeasible; time is the infeasibility proof.")
    return "\n".join(lines)


def format_table2(rows: list[Table2Row], title: str | None = None) -> str:
    """Render Table 2: fast-EC shrinkage and normalized runtime."""
    title = title or "Table 2: Experimental Results for fast EC on SAT"
    header = (
        f"{'Instance':<12} {'#Vars':>6} {'#Clauses':>8} {'Orig(s)':>10} "
        f"{'Ave #V/C':>14} {'New N.R.':>10}"
    )
    lines = [title, header, "-" * len(header)]
    for row in rows:
        vc = f"{row.avg_sub_vars:.1f}/{row.avg_sub_clauses:.1f}"
        lines.append(
            f"{row.name:<12} {row.num_vars:>6} {row.num_clauses:>8} "
            f"{row.orig_runtime:>10.4f} {vc:>14} {row.new_normalized:>10.4f}"
        )
    v_mean, v_med = summarize([r.avg_sub_vars for r in rows])
    c_mean, c_med = summarize([r.avg_sub_clauses for r in rows])
    n_mean, n_med = summarize([r.new_normalized for r in rows])
    lines.append("-" * len(header))
    lines.append(
        f"{'average':<12} {'-':>6} {'-':>8} {'-':>10} "
        f"{f'{v_mean:.1f}/{c_mean:.1f}':>14} {n_mean:>10.4f}"
    )
    lines.append(
        f"{'median':<12} {'-':>6} {'-':>8} {'-':>10} "
        f"{f'{v_med:.1f}/{c_med:.1f}':>14} {n_med:>10.4f}"
    )
    return "\n".join(lines)


def format_table3(rows: list[Table3Row], title: str | None = None) -> str:
    """Render Table 3: preserved-assignment percentages."""
    title = title or "Table 3: Experimental Results for preserving EC on SAT"
    header = (
        f"{'Instance':<12} {'#Vars':>6} {'#Clauses':>8} "
        f"{'%Sol Original':>14} {'%Sol with EC':>13}"
    )
    lines = [title, header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.name:<12} {row.num_vars:>6} {row.num_clauses:>8} "
            f"{row.preserved_original:>14.1f} {row.preserved_with_ec:>13.1f}"
        )
    p_mean, p_med = summarize([r.preserved_original for r in rows])
    e_mean, e_med = summarize([r.preserved_with_ec for r in rows])
    lines.append("-" * len(header))
    lines.append(f"{'average':<12} {'-':>6} {'-':>8} {p_mean:>14.2f} {e_mean:>13.2f}")
    lines.append(f"{'median':<12} {'-':>6} {'-':>8} {p_med:>14.2f} {e_med:>13.2f}")
    return "\n".join(lines)
