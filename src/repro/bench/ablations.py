"""Ablation table: ``python -m repro.bench.ablations``.

Quantifies the design choices DESIGN.md calls out, on one pinned
instance (ii8a1 at the current tier):

* enabling support semantics: acyclic (sound) vs chained (paper-style);
* branch-and-bound presolve on/off;
* EC re-solve warm start on/off;
* root cuts on/off;
* LP backend: own simplex vs scipy HiGHS.

Columns are wall seconds plus machine-independent effort counters.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass

from repro.bench.registry import load_instance
from repro.cnf.mutations import table2_trial
from repro.core.enabling import EnablingOptions, build_enabling_encoding
from repro.ilp.branch_and_bound import BranchAndBoundSolver
from repro.ilp.cuts import strengthen_with_cuts
from repro.ilp.lp_backend import ScipyBackend, SimplexBackend
from repro.ilp.solver import solve
from repro.sat.encoding import encode_sat


@dataclass
class AblationRow:
    """One ablation measurement."""

    group: str
    variant: str
    seconds: float
    nodes: int
    lp_solves: int
    objective: float | None


def _run(group: str, variant: str, fn) -> AblationRow:
    t0 = time.perf_counter()
    solution = fn()
    return AblationRow(
        group=group,
        variant=variant,
        seconds=time.perf_counter() - t0,
        nodes=solution.stats.nodes,
        lp_solves=solution.stats.lp_solves,
        objective=solution.objective,
    )


def run_ablations(instance_name: str = "ii8a1", tier: str | None = None) -> list[AblationRow]:
    """Run every ablation pair on the named registry instance."""
    inst = load_instance(instance_name, tier=tier)
    formula = inst.formula
    rows: list[AblationRow] = []

    for support in ("acyclic", "chained"):
        options = EnablingOptions(mode="objective", support=support)
        rows.append(
            _run(
                "enabling-support",
                support,
                lambda o=options: solve(
                    build_enabling_encoding(formula, o).model,
                    method="exact",
                    time_limit=120,
                ),
            )
        )

    enc = encode_sat(formula)
    for use_presolve in (True, False):
        rows.append(
            _run(
                "presolve",
                "on" if use_presolve else "off",
                lambda u=use_presolve: BranchAndBoundSolver(
                    use_presolve=u, time_limit=120
                ).solve(enc.model),
            )
        )

    original = enc.decode(solve(enc.model, method="exact", time_limit=120), default=False)
    modified, _ = table2_trial(formula, original, rng=5)
    ec_enc = encode_sat(modified)
    warm = ec_enc.values_from_assignment(original.restricted_to(modified.variables))
    for warm_start in (warm, None):
        rows.append(
            _run(
                "ec-warm-start",
                "warm" if warm_start is not None else "cold",
                lambda w=warm_start: BranchAndBoundSolver(time_limit=120).solve(
                    ec_enc.model, warm_start=w
                ),
            )
        )

    for with_cuts in (True, False):
        def run_cuts(w=with_cuts):
            model = enc.model
            if w:
                model, _added = strengthen_with_cuts(model, rounds=2)
            return BranchAndBoundSolver(time_limit=120).solve(model)

        rows.append(_run("root-cuts", "on" if with_cuts else "off", run_cuts))

    for backend in (SimplexBackend(), ScipyBackend()):
        rows.append(
            _run(
                "lp-backend",
                backend.name,
                lambda b=backend: BranchAndBoundSolver(
                    backend=b, time_limit=120
                ).solve(enc.model),
            )
        )
    return rows


def format_ablations(rows: list[AblationRow], instance_name: str) -> str:
    """Render the ablation comparison table."""
    header = (
        f"{'group':<18} {'variant':<12} {'seconds':>9} {'nodes':>7} "
        f"{'LP solves':>10} {'objective':>10}"
    )
    lines = [f"Ablations on {instance_name}", header, "-" * len(header)]
    last_group = None
    for row in rows:
        if last_group is not None and row.group != last_group:
            lines.append("")
        last_group = row.group
        obj = "-" if row.objective is None else f"{row.objective:.1f}"
        lines.append(
            f"{row.group:<18} {row.variant:<12} {row.seconds:>9.3f} "
            f"{row.nodes:>7} {row.lp_solves:>10} {obj:>10}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Run the ablation table")
    parser.add_argument("--instance", default="ii8a1")
    parser.add_argument("--tier", choices=("ci", "paper"), default=None)
    args = parser.parse_args(argv)
    rows = run_ablations(args.instance, tier=args.tier)
    print(format_ablations(rows, args.instance))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
