"""Regenerate Table 1 (enabling EC): ``python -m repro.bench.table1``.

Options::

    --tier ci|paper     instance sizes (default: REPRO_BENCH_SCALE or ci)
    --block small|large|all
    --support chained|acyclic
"""

from __future__ import annotations

import argparse

from repro.bench.registry import suite
from repro.bench.runner import run_table1
from repro.bench.tables import format_table1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Regenerate Table 1")
    parser.add_argument("--tier", choices=("ci", "paper"), default=None)
    parser.add_argument("--block", choices=("small", "large", "all"), default="small")
    parser.add_argument("--support", choices=("chained", "acyclic"), default="chained")
    args = parser.parse_args(argv)
    instances = suite(args.block, tier=args.tier)
    rows = run_table1(instances, support=args.support)
    print(format_table1(rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
