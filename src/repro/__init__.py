"""repro — reproduction of "ILP-Based Engineering Change" (DAC 2002).

Koushanfar, Wong, Feng, Potkonjak: a generic engineering-change (EC)
methodology with three components — *enabling* EC (solve so the solution
tolerates future changes), *fast* EC (re-solve only the affected
sub-instance), and *preserving* EC (re-solve maximizing agreement with the
previous solution) — demonstrated on Boolean satisfiability via a
set-cover 0-1 ILP encoding, plus a graph-coloring domain.

Quick start::

    from repro import CNFFormula, ECFlow, ChangeSet, AddClause, Clause

    formula = CNFFormula([[1, -3, -5], [2, -3, -5], [2, 4, 5], [-3, -4]])
    flow = ECFlow(formula)
    flow.solve_original(enable=True)                  # flexible solution
    flow.apply_changes(ChangeSet([AddClause(Clause([-2, 4]))]))
    flow.resolve(strategy="fast")                     # local re-solve

Subpackages:

* :mod:`repro.cnf` — CNF formulas, DIMACS I/O, benchmark families,
  EC mutations, flexibility analysis;
* :mod:`repro.ilp` — from-scratch 0-1 ILP substrate (simplex, presolve,
  branch & bound, cuts, heuristic iterative improvement);
* :mod:`repro.sat` — set cover, the SAT->ILP encoding, CDCL, DPLL,
  WalkSAT;
* :mod:`repro.core` — the EC methodology itself;
* :mod:`repro.coloring` — EC for graph coloring;
* :mod:`repro.bench` — harness regenerating the paper's Tables 1-3;
* :mod:`repro.engine` — the parallel portfolio solver engine with
  fingerprint caching and incremental EC re-solve;
* :mod:`repro.service` — the :class:`SolverService` facade: one typed
  request/response API over flow, engine, and sessions, with the
  ``repro serve`` daemon and its client;
* :mod:`repro.workload` — scenario generators producing EC request
  streams, the versioned request-trace record/replay format, and the
  closed/open-loop load driver behind ``repro loadgen`` / ``repro
  replay`` / ``repro bench workload``;
* :mod:`repro.obs` — the live observability layer: log-bucketed HDR
  latency histograms, rrd-style ring-buffer time series, the narrow-lock
  metrics registry the engine and service publish into, and the daemon
  monitor behind ``repro stats [--watch]``;
* :mod:`repro.faults` — seeded deterministic fault injection (chaos
  testing): worker kills/hangs, cache I/O failures and torn writes, and
  wire drops/truncations, activated via ``repro serve --chaos`` /
  ``EngineConfig(chaos=...)`` / the ``REPRO_CHAOS`` env var.
"""

from repro.cnf import Assignment, Clause, CNFFormula
from repro.core import (
    AddClause,
    AddVariable,
    ChangeSet,
    ECFlow,
    EnablingOptions,
    RemoveClause,
    RemoveVariable,
    enable_ec,
    fast_ec,
    preserving_ec,
)
from repro.engine import (
    DiskCache,
    EngineConfig,
    IncrementalSession,
    Portfolio,
    PortfolioEngine,
    SolutionCache,
    SolverConfig,
    fingerprint,
)
from repro.ilp import ILPModel, LinExpr, Solution, SolveStatus, solve
from repro.obs import (
    LatencyHistogram,
    MetricsRegistry,
    RingSeries,
    StatsMonitor,
)
from repro.sat import encode_sat
from repro.service import (
    ChangeRequest,
    PendingSolve,
    ServiceClient,
    SolveRequest,
    SolveResponse,
    SolverService,
)
from repro.workload import (
    TraceRecorder,
    WorkloadEvent,
    build_scenario,
    read_trace,
    replay_trace,
)

__version__ = "1.8.0"

__all__ = [
    "AddClause",
    "AddVariable",
    "Assignment",
    "CNFFormula",
    "ChangeRequest",
    "ChangeSet",
    "Clause",
    "DiskCache",
    "ECFlow",
    "EnablingOptions",
    "EngineConfig",
    "ILPModel",
    "IncrementalSession",
    "LatencyHistogram",
    "LinExpr",
    "MetricsRegistry",
    "PendingSolve",
    "Portfolio",
    "PortfolioEngine",
    "RemoveClause",
    "RemoveVariable",
    "RingSeries",
    "ServiceClient",
    "Solution",
    "SolutionCache",
    "SolveRequest",
    "SolveResponse",
    "SolveStatus",
    "SolverConfig",
    "SolverService",
    "StatsMonitor",
    "TraceRecorder",
    "WorkloadEvent",
    "build_scenario",
    "enable_ec",
    "encode_sat",
    "fast_ec",
    "fingerprint",
    "preserving_ec",
    "read_trace",
    "replay_trace",
    "solve",
    "__version__",
]
