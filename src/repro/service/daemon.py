"""``repro serve``: the :class:`SolverService` behind a local socket.

The paper's EC loop — enable once, then absorb a stream of changes with
cheap re-solves — is a long-lived service, not a batch tool: the value
of the verdict cache, the warm process pool, and the per-session state
compounds across requests.  :class:`ServiceDaemon` keeps one
:class:`~repro.service.service.SolverService` alive behind a Unix domain
socket speaking the length-prefixed JSON + packed-bytes frames of
:mod:`repro.service.wire`, so any number of short-lived clients (``repro
solve --connect``, :class:`~repro.service.client.ServiceClient`, or a
foreign-language peer implementing the trivial frame format) share one
pool and one cache.

Protocol ops (one request frame -> one response frame per op, many ops
per connection):

``ping``
    liveness check; answers ``{"ok": true, "pong": true}``.
``solve``
    a :class:`~repro.service.requests.SolveRequest` (instance in the
    binary payload as packed wire bytes, or a server-side DIMACS path in
    the header); with a ``session`` name it opens/re-queries a named
    incremental session.
``change``
    a :class:`~repro.service.requests.ChangeRequest` against a named
    session.
``solve_many``
    a whole batch in one frame (concatenated packed payloads, split by
    the header's ``lens`` list) answered through
    :meth:`~repro.service.service.SolverService.solve_many` — one
    shared pool and intra-batch fingerprint dedup, one round trip.
``close_session``
    drop one named session.
``stats``
    engine/cache counter snapshot.
``shutdown``
    acknowledge, then stop the accept loop and close the service.

Shutdown is always a **graceful drain**: whether triggered by the
``shutdown`` op, :meth:`ServiceDaemon.shutdown` (the CLI wires SIGTERM
to it), or the ``max_requests`` budget, the accept loop stops, every
in-flight request finishes and its response is sent, the service is
closed (which drains queued ``submit()`` work and flushes any attached
trace recorder), and only then does ``serve_forever`` return — so a
recorded replay run always ends on a complete trace.

Errors are frames too — ``{"ok": false, "error": "..."}`` — a malformed
request must never take the daemon down.  Pair it with the persistent
disk cache backend (``repro serve --cache disk``) and verdicts survive
daemon restarts: the second daemon over the same cache directory answers
a repeated instance without any solver (the cross-process cache hit the
round-trip test asserts).
"""

from __future__ import annotations

import os
import socket
import threading
import time

from repro.errors import ReproError, ServiceError
from repro.service.service import SolverService
from repro.service.wire import (
    WireError,
    batch_request_from_wire,
    change_request_from_wire,
    recv_frame,
    response_to_wire,
    send_frame,
    solve_request_from_wire,
)


class ServiceDaemon:
    """Serve one :class:`SolverService` over a Unix domain socket.

    Args:
        socket_path: filesystem path to bind (a stale file is replaced).
        service: the service to expose (a default one when omitted; the
            daemon closes whatever it serves on shutdown).
        log_path: append one line per handled op here (daemon forensics;
            uploaded as a CI artifact when the service lane fails).
        max_requests: stop accepting and drain after this many handled
            non-ping ops (``repro serve --max-requests``) — how replay
            and load runs get a deterministic, clean daemon exit.
    """

    def __init__(
        self,
        socket_path: str,
        service: SolverService | None = None,
        *,
        log_path: str | None = None,
        max_requests: int | None = None,
    ):
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - posix only
            raise ServiceError("repro serve needs AF_UNIX sockets")
        if max_requests is not None and max_requests < 1:
            raise ServiceError("max_requests must be at least 1")
        self.socket_path = str(socket_path)
        self.service = service if service is not None else SolverService()
        self.log_path = log_path
        self.max_requests = max_requests
        self._handled = 0
        self._handled_lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._stop = threading.Event()
        self._log_lock = threading.Lock()
        self._conn_threads: list[threading.Thread] = []

    # ------------------------------------------------------------------
    def _log(self, line: str) -> None:
        if self.log_path is None:
            return
        stamp = time.strftime("%H:%M:%S")
        with self._log_lock:
            with open(self.log_path, "a", encoding="utf-8") as fh:
                fh.write(f"{stamp} {line}\n")

    # ------------------------------------------------------------------
    def bind(self) -> None:
        """Bind and listen (separate from :meth:`serve_forever` so tests
        and the CLI can report readiness before blocking)."""
        if self._listener is not None:
            return
        try:
            os.unlink(self.socket_path)
        except FileNotFoundError:
            pass
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self.socket_path)
        listener.listen(16)
        # A short accept timeout keeps the loop responsive to shutdown()
        # from another thread without busy-waiting.
        listener.settimeout(0.2)
        self._listener = listener
        self._log(f"listening on {self.socket_path}")

    def serve_forever(self) -> None:
        """Accept-and-dispatch until :meth:`shutdown` (or a ``shutdown``
        op) fires; then drain connections and close the service."""
        self.bind()
        try:
            while not self._stop.is_set():
                try:
                    conn, _ = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn,), daemon=True
                )
                thread.start()
                # Keep only live handlers so a long-lived daemon's thread
                # list stays bounded by its concurrent-connection count.
                self._conn_threads = [
                    t for t in self._conn_threads if t.is_alive()
                ]
                self._conn_threads.append(thread)
        finally:
            self._close_listener()
            live = [t for t in self._conn_threads if t.is_alive()]
            if live:
                self._log(f"draining {len(live)} connection(s)")
            for thread in self._conn_threads:
                thread.join(timeout=10.0)
            # Closing the service drains queued submit() work and
            # flushes/closes any attached trace recorder.
            self.service.close()
            self._log("daemon stopped")

    def start(self) -> threading.Thread:
        """Run :meth:`serve_forever` on a background thread (tests)."""
        self.bind()
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def shutdown(self) -> None:
        """Stop the accept loop (idempotent; safe from any thread)."""
        self._stop.set()

    def _close_listener(self) -> None:
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            finally:
                try:
                    os.unlink(self.socket_path)
                except OSError:
                    pass

    # ------------------------------------------------------------------
    def _serve_connection(self, conn: socket.socket) -> None:
        # A short receive timeout keeps an *idle* connection's handler
        # responsive to shutdown(): without it a client holding the
        # socket open without sending would pin this thread in recv and
        # stall the graceful drain by the full join timeout.  In-flight
        # requests are unaffected — dispatch is never interrupted, and a
        # local peer's frame chunks arrive faster than the timeout.
        conn.settimeout(0.25)
        with conn:
            while not self._stop.is_set():
                try:
                    frame = recv_frame(conn)
                except socket.timeout:
                    continue
                except WireError as exc:
                    self._log(f"wire error: {exc}")
                    self._try_send(conn, {"ok": False, "error": str(exc)})
                    return
                if frame is None:
                    return
                header, payload = frame
                op = header.get("op", "")
                t0 = time.perf_counter()
                try:
                    response, stop_after = self._dispatch(op, header, payload)
                except ReproError as exc:
                    response, stop_after = {"ok": False, "error": str(exc)}, False
                except Exception as exc:  # a bug must not kill the daemon
                    response, stop_after = (
                        {"ok": False, "error": f"internal error: {exc!r}"},
                        False,
                    )
                wall = time.perf_counter() - t0
                self._log(
                    f"op={op} ok={response.get('ok')} "
                    f"status={response.get('status', '-')} "
                    f"source={response.get('source', '-')} wall={wall:.4f}s"
                )
                if not self._try_send(conn, response):
                    return
                if stop_after:
                    self.shutdown()
                    return
                if op != "ping" and self._budget_spent():
                    self._log(
                        f"max_requests={self.max_requests} reached; draining"
                    )
                    self.shutdown()
                    return

    def _dispatch(
        self, op: str, header: dict, payload: bytes
    ) -> tuple[dict, bool]:
        """(response header, stop-after) for one op."""
        if op == "ping":
            return {"ok": True, "pong": True}, False
        if op == "solve":
            request = solve_request_from_wire(header, payload)
            return response_to_wire(self.service.solve(request)), False
        if op == "change":
            request = change_request_from_wire(header)
            return response_to_wire(self.service.change(request)), False
        if op == "solve_many":
            formulas, options = batch_request_from_wire(header, payload)
            responses = self.service.solve_many(formulas, **options)
            return {
                "ok": True,
                "results": [response_to_wire(r) for r in responses],
            }, False
        if op == "close_session":
            existed = self.service.close_session(header.get("session", ""))
            return {"ok": True, "existed": existed}, False
        if op == "stats":
            return {"ok": True, "stats": self.service.stats()}, False
        if op == "shutdown":
            return {"ok": True, "stopping": True}, True
        raise ServiceError(f"unknown op {op!r}")

    def _budget_spent(self) -> bool:
        """Count one handled op; True once ``max_requests`` is reached."""
        if self.max_requests is None:
            return False
        with self._handled_lock:
            self._handled += 1
            return self._handled >= self.max_requests

    @staticmethod
    def _try_send(conn: socket.socket, header: dict) -> bool:
        try:
            send_frame(conn, header)
            return True
        except OSError:
            return False
