"""``repro serve``: the :class:`SolverService` behind a local socket.

The paper's EC loop — enable once, then absorb a stream of changes with
cheap re-solves — is a long-lived service, not a batch tool: the value
of the verdict cache, the warm process pool, and the per-session state
compounds across requests.  :class:`ServiceDaemon` keeps one
:class:`~repro.service.service.SolverService` alive behind a Unix domain
socket speaking the length-prefixed JSON + packed-bytes frames of
:mod:`repro.service.wire`, so any number of short-lived clients (``repro
solve --connect``, :class:`~repro.service.client.ServiceClient`, or a
foreign-language peer implementing the trivial frame format) share one
pool and one cache.

Protocol ops (one request frame -> one response frame per op, many ops
per connection):

``ping``
    liveness check; answers ``{"ok": true, "pong": true}``.
``health``
    degradation snapshot: pool generation and solo-fallback count,
    cache degraded/error flags, drain state, and the live fault-plan
    counters when chaos is installed (``repro stats`` surfaces it).
    Exempt from the ``max_requests`` budget, like ``ping``.
``auth``
    per-connection token handshake.  A daemon started with
    ``--auth-token`` (or ``$REPRO_AUTH_TOKEN``) answers every frame
    before a valid handshake with a 401-style error and closes the
    connection; a token-less daemon acks the handshake as a no-op so
    one client config works against open and guarded nodes alike.
``sync``
    pull-based anti-entropy page: cache entries past a sequence
    ``cursor`` from the disk cache's append-only journal, answered as
    ``{"cursor", "entries", "more"}``.  Entries are content-addressed
    by fp-v2, so peers merge pages blindly and idempotently
    (:mod:`repro.cluster.sync` drives the loop).  Budget-exempt like
    ``ping``/``health``.
``solve``
    a :class:`~repro.service.requests.SolveRequest` (instance in the
    binary payload as packed wire bytes, or a server-side DIMACS path in
    the header); with a ``session`` name it opens/re-queries a named
    incremental session.
``change``
    a :class:`~repro.service.requests.ChangeRequest` against a named
    session.
``solve_many``
    a whole batch in one frame (concatenated packed payloads, split by
    the header's ``lens`` list) answered through
    :meth:`~repro.service.service.SolverService.solve_many` — one
    shared pool and intra-batch fingerprint dedup, one round trip.
``close_session``
    drop one named session.
``stats``
    engine/cache counter snapshot (now including cache introspection —
    entries/bytes/evictions — and the live metrics registry).
``stats_frame``
    one observability frame: windowed rps/hit-rate over the monitor's
    ring-buffer history, gauges, and the lifetime latency histogram
    (``repro stats --json --connect``).
``watch`` (alias ``subscribe``)
    a *streaming* op: the daemon acknowledges, then pushes one metric
    frame per ``interval`` seconds on the same connection until
    ``count`` frames were sent, the client disconnects, or the daemon
    drains — the push-stream behind ``repro stats --watch``.
``shutdown``
    acknowledge, then stop the accept loop and close the service.

The daemon also runs a :class:`~repro.obs.metrics.StatsMonitor`: one
sample per second into an rrd-style ring buffer, so a one-shot
``stats_frame`` right after a load burst still reports the burst's
request rate rather than the idle instant's zero.  The forensics log
(``log_path``) is structured: one JSON record per event with a
monotonic timestamp, op, session, fingerprint prefix, latency, and
outcome — parseable by tools, not just eyeballs.

Shutdown is always a **graceful drain**: whether triggered by the
``shutdown`` op, :meth:`ServiceDaemon.shutdown` (the CLI wires SIGTERM
to it), or the ``max_requests`` budget, the accept loop stops, every
in-flight request finishes and its response is sent, the service is
closed (which drains queued ``submit()`` work and flushes any attached
trace recorder), and only then does ``serve_forever`` return — so a
recorded replay run always ends on a complete trace.

Errors are frames too — ``{"ok": false, "error": "..."}`` — a malformed
request must never take the daemon down.  Pair it with the persistent
disk cache backend (``repro serve --cache disk``) and verdicts survive
daemon restarts: the second daemon over the same cache directory answers
a repeated instance without any solver (the cross-process cache hit the
round-trip test asserts).
"""

from __future__ import annotations

import json
import os
import select
import socket
import threading
import time

from repro import faults
from repro.errors import ReproError, ServiceError
from repro.obs import tracing
from repro.obs.metrics import FrameTracker, StatsMonitor
from repro.service.address import Address, parse_address, parse_tcp
from repro.service.service import SolverService
from repro.service.wire import (
    WireError,
    batch_request_from_wire,
    change_request_from_wire,
    recv_frame,
    response_to_wire,
    send_frame,
    send_truncated_frame,
    solve_request_from_wire,
)

#: Ops worth starting a *new* trace for when the daemon itself samples
#: (``--trace-sample`` on an un-traced incoming request).  Requests that
#: already carry a context are continued regardless of op.
_TRACED_OPS = ("solve", "change", "solve_many")


class ServiceDaemon:
    """Serve one :class:`SolverService` over Unix and/or TCP sockets.

    Args:
        socket_path: filesystem path to bind (a stale file is replaced);
            ``None`` for a TCP-only daemon.
        service: the service to expose (a default one when omitted; the
            daemon closes whatever it serves on shutdown).
        log_path: append one line per handled op here (daemon forensics;
            uploaded as a CI artifact when the service lane fails).
        max_requests: stop accepting and drain after this many handled
            non-ping ops (``repro serve --max-requests``) — how replay
            and load runs get a deterministic, clean daemon exit.
        max_frame_bytes: per-daemon cap on incoming header/payload sizes
            (``repro serve --max-frame-bytes``); defaults to the wire
            module's global cap.  An over-cap frame is logged with its
            offending declared length before the connection closes.
        tcp_address: additionally listen on ``HOST:PORT`` (``repro serve
            --tcp``) — the same frame protocol, reachable across boxes.
            Port 0 binds an ephemeral port; :attr:`tcp_port` reports it
            after :meth:`bind`.
        auth_token: when set, every connection must open with a valid
            ``auth`` frame before its first real op; anything else is
            answered with a 401-style error frame and a closed
            connection.  TCP listeners without a token are fine on a
            trusted network but get a logged warning.
        syncer: an optional anti-entropy puller (:class:`~repro.cluster.
            sync.CacheSyncer`); the daemon owns its lifecycle, running
            it for exactly the span of :meth:`serve_forever`.
        tracer: a :class:`~repro.obs.tracing.Tracer` (``repro serve
            --trace-log`` / ``--trace-sample``).  Installed process-
            globally so the engine/portfolio stage spans of requests
            dispatched here land in the same ring/log; each traced op
            gets a ``daemon.<op>`` span re-parenting downstream work,
            and its trace/span ids are folded into the structured
            ``op`` log records.  ``None`` disables all of it.
    """

    def __init__(
        self,
        socket_path: str | None,
        service: SolverService | None = None,
        *,
        log_path: str | None = None,
        max_requests: int | None = None,
        monitor_interval: float = 1.0,
        max_frame_bytes: int | None = None,
        tcp_address: str | None = None,
        auth_token: str | None = None,
        syncer=None,
        tracer: "tracing.Tracer | None" = None,
    ):
        if max_requests is not None and max_requests < 1:
            raise ServiceError("max_requests must be at least 1")
        if max_frame_bytes is not None and max_frame_bytes < 1:
            raise ServiceError("max_frame_bytes must be at least 1")
        if socket_path is None and tcp_address is None:
            raise ServiceError(
                "daemon needs at least one endpoint (socket_path or tcp)"
            )
        if socket_path is not None and not hasattr(socket, "AF_UNIX"):
            # pragma: no cover - posix only
            raise ServiceError("Unix endpoints need AF_UNIX sockets")
        self.socket_path = str(socket_path) if socket_path is not None else None
        self.tcp_address: Address | None = (
            parse_tcp(tcp_address) if tcp_address is not None else None
        )
        #: Actual bound TCP port (meaningful after :meth:`bind`; with a
        #: ``HOST:0`` request this is the kernel-assigned one).
        self.tcp_port: int | None = None
        self.auth_token = auth_token or None
        self.syncer = syncer
        self.tracer = tracer
        if tracer is not None:
            # Process-global (the faults idiom): engine and portfolio
            # stage spans find the tracer through tracing.get_tracer(),
            # not through a parameter threaded ten layers deep.
            tracing.install(tracer)
        self.service = service if service is not None else SolverService()
        self.log_path = log_path
        self.max_requests = max_requests
        self.max_frame_bytes = max_frame_bytes
        #: Per-second sampler over the service's metrics registry; its
        #: thread runs for exactly the lifetime of :meth:`serve_forever`.
        self.monitor = StatsMonitor(
            self.service.metrics, interval=monitor_interval
        )
        self._handled = 0
        self._handled_lock = threading.Lock()
        self._listeners: list[socket.socket] = []
        self._stop = threading.Event()
        self._log_lock = threading.Lock()
        self._conn_threads: list[threading.Thread] = []

    @property
    def addresses(self) -> list[str]:
        """Canonical strings for every bound endpoint (after bind)."""
        out = []
        if self.socket_path is not None:
            out.append(str(Address(scheme="unix", path=self.socket_path)))
        if self.tcp_address is not None:
            port = self.tcp_port if self.tcp_port else self.tcp_address.port
            out.append(
                str(Address(scheme="tcp", host=self.tcp_address.host, port=port))
            )
        return out

    # ------------------------------------------------------------------
    def _log(self, event: str, **fields) -> None:
        """Append one structured JSON record to the forensics log.

        Every record carries ``mono`` (monotonic seconds — orderable
        across system clock steps), ``ts`` (wall clock, for humans
        correlating with the outside world), and ``event``; op records
        add op/session/fingerprint-prefix/latency/outcome fields.
        """
        if self.log_path is None:
            return
        record = {
            "mono": round(time.monotonic(), 6),
            "ts": round(time.time(), 3),
            "event": event,
        }
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._log_lock:
            with open(self.log_path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")

    # ------------------------------------------------------------------
    def bind(self) -> None:
        """Bind and listen on every endpoint (separate from
        :meth:`serve_forever` so tests and the CLI can report readiness
        — including an ephemeral TCP port — before blocking)."""
        if self._listeners:
            return
        listeners: list[socket.socket] = []
        try:
            if self.socket_path is not None:
                try:
                    os.unlink(self.socket_path)
                except FileNotFoundError:
                    pass
                listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                listener.bind(self.socket_path)
                listeners.append(listener)
            if self.tcp_address is not None:
                listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                listener.setsockopt(
                    socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
                )
                listener.bind(self.tcp_address.connect_target)
                self.tcp_port = listener.getsockname()[1]
                listeners.append(listener)
                if self.auth_token is None:
                    self._log("tcp_unauthenticated", tcp=self.addresses[-1])
            for listener in listeners:
                listener.listen(16)
                # A short accept timeout keeps the loop responsive to
                # shutdown() from another thread without busy-waiting.
                listener.settimeout(0.2)
        except OSError:
            for listener in listeners:
                listener.close()
            raise
        self._listeners = listeners
        self._log("listening", addresses=self.addresses)

    def serve_forever(self) -> None:
        """Accept-and-dispatch until :meth:`shutdown` (or a ``shutdown``
        op) fires; then drain connections and close the service."""
        self.bind()
        self.monitor.start()
        if self.syncer is not None:
            self.syncer.start()
        try:
            while not self._stop.is_set():
                try:
                    ready, _, _ = select.select(self._listeners, [], [], 0.2)
                except OSError:
                    break
                for listener in ready:
                    try:
                        conn, _ = listener.accept()
                    except (socket.timeout, OSError):
                        continue
                    thread = threading.Thread(
                        target=self._serve_connection, args=(conn,), daemon=True
                    )
                    thread.start()
                    # Keep only live handlers so a long-lived daemon's
                    # thread list stays bounded by its concurrent-
                    # connection count.
                    self._conn_threads = [
                        t for t in self._conn_threads if t.is_alive()
                    ]
                    self._conn_threads.append(thread)
        finally:
            self._close_listener()
            live = [t for t in self._conn_threads if t.is_alive()]
            if live:
                self._log("draining", connections=len(live))
            for thread in self._conn_threads:
                thread.join(timeout=10.0)
            if self.syncer is not None:
                self.syncer.stop()
            self.monitor.stop()
            # Closing the service drains queued submit() work and
            # flushes/closes any attached trace recorder.
            self.service.close()
            self._log("stopped")

    def start(self) -> threading.Thread:
        """Run :meth:`serve_forever` on a background thread (tests)."""
        self.bind()
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def shutdown(self) -> None:
        """Stop the accept loop (idempotent; safe from any thread)."""
        self._stop.set()

    def _close_listener(self) -> None:
        listeners, self._listeners = self._listeners, []
        for listener in listeners:
            try:
                listener.close()
            except OSError:  # pragma: no cover - close never really fails
                pass
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass

    # ------------------------------------------------------------------
    def _serve_connection(self, conn: socket.socket) -> None:
        # A short receive timeout keeps an *idle* connection's handler
        # responsive to shutdown(): without it a client holding the
        # socket open without sending would pin this thread in recv and
        # stall the graceful drain by the full join timeout.  In-flight
        # requests are unaffected — dispatch is never interrupted, and a
        # local peer's frame chunks arrive faster than the timeout.
        conn.settimeout(0.25)
        if conn.family == socket.AF_INET:
            try:
                # One small frame out, one frame back: the pattern
                # Nagle coalescing penalises — disable it.
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - always settable on tcp
                pass
        try:
            self._serve_frames(conn)
        finally:
            # shutdown() before close(): forked pool workers inherit a
            # dup of every connection fd open at fork time, so a plain
            # close() here does NOT deliver EOF to the peer while any
            # worker lives — the client would stall out its full socket
            # timeout on every connection the daemon drops (error
            # frames, chaos drops, drain).  Tearing the connection down
            # explicitly signals the peer regardless of dup'd fds.
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()

    def _serve_frames(self, conn: socket.socket) -> None:
        # Auth is per-connection state: with a token configured, nothing
        # dispatches until this connection presented it.
        authed = self.auth_token is None
        while not self._stop.is_set():
            try:
                frame = recv_frame(conn, self.max_frame_bytes)
            except socket.timeout:
                continue
            except ConnectionError:
                # A hard peer disconnect (RST) between frames is the
                # moral equivalent of a clean close, not a daemon
                # error — drop the connection and keep serving.
                return
            except WireError as exc:
                # Structured record: the offending declared length
                # and the op being read (when the header got that
                # far) make a corrupt-peer forensics trail.
                self._log(
                    "wire_error",
                    error=str(exc),
                    length=exc.length,
                    op=exc.op,
                )
                self.service.metrics.inc("errors")
                self._try_send(conn, {"ok": False, "error": str(exc)})
                return
            if frame is None:
                return
            header, payload = frame
            op = header.get("op", "")
            # Incoming trace context (absent/garbage parses to None —
            # old clients' frames are untouched by tracing).
            ctx = tracing.ctx_from_wire(header.get("trace"))
            # Wire-level chaos (no-ops without an installed plan).
            # Drop fires BEFORE dispatch — the request never executed,
            # so any op is safe to retry; slow just stalls the peer.
            if faults.fire("wire.drop") is not None:
                self._log(
                    "chaos",
                    point="wire.drop",
                    op=op,
                    trace=ctx.trace_id if ctx is not None else None,
                )
                return
            slow = faults.fire("wire.slow")
            if slow is not None:
                self._log("chaos", point="wire.slow", op=op)
                time.sleep(slow.delay or 0.05)
            if op == "auth":
                authed = self._handle_auth(conn, header, authed)
                if authed is None:
                    return
                continue
            if not authed:
                # Everything before a valid handshake is rejected with a
                # 401-style frame and a closed connection — the guard
                # that makes a TCP listener safe to expose.
                self.service.metrics.inc("auth_failures")
                self._log("auth_required", op=op)
                self._try_send(
                    conn,
                    {
                        "ok": False,
                        "error": "auth required: open with an auth frame "
                        "(repro --connect picks the token up from "
                        "$REPRO_AUTH_TOKEN)",
                        "code": 401,
                    },
                )
                return
            if op == "sync" and faults.fire("sync.drop") is not None:
                # Chaos: kill the connection mid-sync, response unsent.
                # Safe by design — sync is a read-only page pull and the
                # merge of a re-pulled page is idempotent.
                self._log("chaos", point="sync.drop")
                return
            if op in ("watch", "subscribe"):
                # Streaming op: one request frame, many pushed
                # response frames on this connection (its own path —
                # _dispatch is strictly one-request-one-response).
                if not self._serve_watch(conn, header):
                    return
                if self._budget_spent():
                    self._log("drain_budget", max_requests=self.max_requests)
                    self.shutdown()
                    return
                continue
            # One daemon.<op> span per traced op: a child of the
            # incoming context (client root or router hop), or a fresh
            # root when this daemon's own sampling knob fires on an
            # untraced request.  Its context is activated around
            # dispatch so every engine/portfolio stage parents on it —
            # dispatch runs synchronously on this handler thread.
            span = None
            if self.tracer is not None:
                if ctx is not None:
                    span = self.tracer.begin(f"daemon.{op}", ctx)
                elif op in _TRACED_OPS and self.tracer.maybe_trace():
                    span = self.tracer.begin(f"daemon.{op}")
                if span is not None:
                    ctx = span.context
            t0 = time.perf_counter()
            try:
                with tracing.activated(
                    span.context if span is not None else None
                ):
                    response, stop_after = self._dispatch(op, header, payload)
            except ReproError as exc:
                response, stop_after = {"ok": False, "error": str(exc)}, False
            except Exception as exc:  # a bug must not kill the daemon
                response, stop_after = (
                    {"ok": False, "error": f"internal error: {exc!r}"},
                    False,
                )
            wall = time.perf_counter() - t0
            if span is not None:
                self.tracer.finish(
                    span,
                    ok=bool(response.get("ok")),
                    status=response.get("status"),
                    source=response.get("source"),
                    session=header.get("session"),
                    error=response.get("error"),
                )
            # No blanket errors bump here: the service counts its own
            # failed solve/change/solve_many requests (in a finally),
            # and _dispatch counts the failures that never reach the
            # service — a blanket inc would double-count every one.
            fp = response.get("fingerprint") or ""
            self._log(
                "op",
                op=op,
                ok=bool(response.get("ok")),
                status=response.get("status"),
                source=response.get("source"),
                session=header.get("session"),
                fp=fp[:12] or None,
                wall=round(wall, 6),
                error=response.get("error"),
                trace=ctx.trace_id if ctx is not None else None,
                span=span.span_id if span is not None else None,
            )
            if faults.fire("wire.truncate") is not None:
                # Fires AFTER dispatch: the request executed but the
                # client never sees the response — the shape a daemon
                # crash mid-send produces.  Retry-safe because solves
                # coalesce and changes carry idempotency ids.
                self._log("chaos", point="wire.truncate", op=op)
                try:
                    send_truncated_frame(conn)
                except OSError:
                    pass
                return
            if not self._try_send(conn, response):
                return
            if stop_after:
                self.shutdown()
                return
            if op not in ("ping", "health", "sync") and self._budget_spent():
                self._log("drain_budget", max_requests=self.max_requests)
                self.shutdown()
                return

    def _handle_auth(
        self, conn: socket.socket, header: dict, authed: bool
    ) -> bool | None:
        """Answer one ``auth`` frame.

        Returns the connection's new authed state, or ``None`` when the
        connection must close (bad token, chaos rejection, dead peer).
        Against a token-less daemon the handshake is a cheap no-op ack,
        so one client config works across open and guarded nodes.
        """
        if self.auth_token is None or authed:
            if not self._try_send(conn, {"ok": True, "authed": True}):
                return None
            return authed or True
        if header.get("token") != self.auth_token:
            self.service.metrics.inc("auth_failures")
            self._log("auth_fail")
            self._try_send(
                conn,
                {"ok": False, "error": "auth failed: bad token", "code": 401},
            )
            return None
        if faults.fire("auth.reject") is not None:
            # Chaos: bounce a *valid* token once — the shape of a node
            # restarting mid-handshake.  Clients absorb it inside their
            # connect budget; the router counts it and fails over.
            self.service.metrics.inc("auth_rejects")
            self._log("chaos", point="auth.reject")
            self._try_send(
                conn,
                {"ok": False, "error": "auth rejected (chaos)", "code": 401},
            )
            return None
        self._log("auth_ok")
        if not self._try_send(conn, {"ok": True, "authed": True}):
            return None
        return True

    def _parse(self, build):
        """Build a request record, counting parse failures as errors.

        Requests that fail *before* reaching the service would otherwise
        be invisible to metrics — the service's own error accounting only
        covers calls that got through the front door.
        """
        try:
            return build()
        except Exception:
            self.service.metrics.inc("errors")
            raise

    def _dispatch(
        self, op: str, header: dict, payload: bytes
    ) -> tuple[dict, bool]:
        """(response header, stop-after) for one op."""
        if op == "ping":
            return {"ok": True, "pong": True}, False
        if op == "health":
            # Exempt from the max_requests budget (like ping): probes
            # from orchestration must not drain a quota'd daemon.
            health = self.service.health()
            if self.syncer is not None:
                health["sync"] = self.syncer.status()
            return {"ok": True, "health": health}, False
        if op == "sync":
            # Also budget-exempt: background replication pulls must not
            # drain a quota'd daemon.
            return self._dispatch_sync(header), False
        if op == "solve":
            request = self._parse(
                lambda: solve_request_from_wire(header, payload)
            )
            return response_to_wire(self.service.solve(request)), False
        if op == "change":
            request = self._parse(lambda: change_request_from_wire(header))
            return response_to_wire(self.service.change(request)), False
        if op == "solve_many":
            formulas, options = self._parse(
                lambda: batch_request_from_wire(header, payload)
            )
            responses = self.service.solve_many(formulas, **options)
            return {
                "ok": True,
                "results": [response_to_wire(r) for r in responses],
            }, False
        if op == "close_session":
            existed = self.service.close_session(header.get("session", ""))
            return {"ok": True, "existed": existed}, False
        if op == "stats":
            return {"ok": True, "stats": self.service.stats()}, False
        if op == "stats_frame":
            window = header.get("window")
            recent = int(header.get("recent") or 0)
            frame = self.monitor.snapshot_frame(
                window=float(window) if window is not None else 60.0,
                recent=max(0, recent),
            )
            return {"ok": True, "frame": frame}, False
        if op == "shutdown":
            return {"ok": True, "stopping": True}, True
        self.service.metrics.inc("errors")
        raise ServiceError(f"unknown op {op!r}")

    def _dispatch_sync(self, header: dict) -> dict:
        """One anti-entropy page: cache entries past the peer's cursor.

        Only the persistent disk cache keeps the append-only journal
        the cursor walks, so a memory/none-cache daemon answers with a
        plain (non-fatal) error frame.
        """
        cache = getattr(self.service.engine, "cache", None)
        if not hasattr(cache, "entries_since"):
            raise ServiceError(
                "sync needs the persistent cache (repro serve --cache disk)"
            )
        try:
            cursor = max(0, int(header.get("cursor") or 0))
            limit = int(header.get("limit") or 256)
        except (TypeError, ValueError):
            raise ServiceError("sync cursor/limit must be integers") from None
        limit = min(max(limit, 1), 2048)
        next_cursor, entries = cache.entries_since(cursor, limit=limit)
        self.service.metrics.bump(
            counts={"sync_requests": 1, "sync_served": len(entries)}
        )
        return {
            "ok": True,
            "cursor": next_cursor,
            "entries": entries,
            "more": next_cursor < cache.sync_cursor(),
        }

    # ------------------------------------------------------------------
    def _serve_watch(self, conn: socket.socket, header: dict) -> bool:
        """Stream metric frames until done/disconnect/drain.

        Returns whether the connection is still usable for further ops.
        A subscriber that vanished mid-stream only costs this handler
        thread its send; the accept loop and the graceful drain path
        never block on it — the loop re-checks ``_stop`` every tick and
        caps the tick at one second of drain latency.
        """
        try:
            interval = float(header.get("interval") or 1.0)
            count = header.get("count")
            count = int(count) if count is not None else None
        except (TypeError, ValueError):
            return self._try_send(
                conn, {"ok": False, "error": "bad watch interval/count"}
            )
        interval = min(max(interval, 0.05), 60.0)
        if count is not None and count < 1:
            return self._try_send(
                conn, {"ok": False, "error": "watch count must be >= 1"}
            )
        if not self._try_send(
            conn, {"ok": True, "watching": True, "interval": interval}
        ):
            return False
        self._log("watch_start", interval=interval, count=count)
        # Each subscriber diffs the registry through its own tracker, so
        # concurrent watchers at different intervals never share a
        # cursor; uptime is reported against the daemon monitor's epoch.
        tracker = FrameTracker(self.service.metrics, t0=self.monitor.t0)
        sent = 0
        while count is None or sent < count:
            # Wake at least once a second so a drain is never stuck
            # behind a long subscriber interval.
            deadline = time.monotonic() + interval
            stopped = False
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                if self._stop.wait(min(remaining, 1.0)):
                    stopped = True
                    break
            if stopped:
                break
            if not self._try_send(conn, {"ok": True, "frame": tracker.frame()}):
                self._log("watch_disconnect", frames=sent)
                return False
            sent += 1
        self._log("watch_done", frames=sent)
        return self._try_send(conn, {"ok": True, "done": True, "frames": sent})

    def _budget_spent(self) -> bool:
        """Count one handled op; True once ``max_requests`` is reached."""
        if self.max_requests is None:
            return False
        with self._handled_lock:
            self._handled += 1
            return self._handled >= self.max_requests

    @staticmethod
    def _try_send(conn: socket.socket, header: dict) -> bool:
        try:
            send_frame(conn, header)
            return True
        except OSError:
            return False
