"""Unified service layer: one typed request/response API over the repo.

* :mod:`repro.service.requests` -- the frozen :class:`SolveRequest` /
  :class:`ChangeRequest` / :class:`SolveResponse` records every front
  door speaks;
* :mod:`repro.service.service`  -- the :class:`SolverService` facade:
  one shared :class:`~repro.engine.engine.PortfolioEngine`, a table of
  named :class:`~repro.engine.session.IncrementalSession`\\ s
  (multi-tenant: many sessions, one pool), pluggable cache backends via
  :class:`~repro.engine.config.EngineConfig`, and
  :meth:`~repro.service.service.SolverService.submit` returning a
  future-like :class:`PendingSolve`;
* :mod:`repro.service.wire`     -- length-prefixed JSON + packed-bytes
  frames;
* :mod:`repro.service.address`  -- :func:`parse_address`, the one
  grammar behind every ``--connect``/``--peer``/``--node`` flag
  (``unix://PATH``, ``tcp://HOST:PORT``, or a bare socket path);
* :mod:`repro.service.daemon`   -- :class:`ServiceDaemon`, the ``repro
  serve`` loop over Unix and/or TCP sockets, with optional token auth
  and anti-entropy cache sync;
* :mod:`repro.service.client`   -- :class:`ServiceClient`, the thin
  connection used by ``repro solve --connect``.
"""

from repro.service.address import Address, parse_address
from repro.service.client import ServiceClient
from repro.service.daemon import ServiceDaemon
from repro.service.requests import (
    ChangeRequest,
    SolveRequest,
    SolveResponse,
)
from repro.service.service import PendingSolve, SolverService

__all__ = [
    "Address",
    "ChangeRequest",
    "PendingSolve",
    "ServiceClient",
    "ServiceDaemon",
    "SolveRequest",
    "SolveResponse",
    "SolverService",
    "parse_address",
]
