"""Thin client for a ``repro serve`` daemon.

:class:`ServiceClient` mirrors the :class:`~repro.service.service.
SolverService` surface over the wire — the same typed
:class:`~repro.service.requests.SolveRequest` /
:class:`~repro.service.requests.ChangeRequest` records go in, the same
:class:`~repro.service.requests.SolveResponse` comes back — so code can
switch between an in-process service and a daemon by swapping one
object.  ``repro solve FILE --connect SOCKET`` is exactly this client.

A by-value formula is shipped as the packed kernel's raw wire bytes
(:meth:`~repro.cnf.packed.PackedCNF.to_bytes`): the daemon rebuilds the
flat arrays with two C-level copies and never sees the client's object
graph — the portfolio's worker transport, reused across the process
boundary.

**Retry policy** — the client retries *transport* failures (a dropped
connection, a truncated frame, a refused connect while the daemon
restarts), never *service* errors (an error response is the daemon's
authoritative answer).  Each retry reconnects and resends after an
exponentially growing, jittered backoff; a request deadline is a total
budget — the re-sent header carries only what is left of it.  Retried
requests are safe by construction: solves are read-only over the
engine's single-flight table, and every change carries an idempotency
``change_id`` the daemon deduplicates (filled in automatically here).
The one visible caveat: a retried ``close_session`` may report
``existed=False`` because the first attempt already closed it.  When
the connect budget itself is exhausted the client raises
:class:`~repro.errors.ConnectError` — still an ``OSError`` for blanket
handlers, but specific enough for the CLI to exit 1 with one line.
"""

from __future__ import annotations

import os
import random
import socket
import time
import uuid
from dataclasses import replace

from repro.errors import AuthError, ConnectError, ServiceError
from repro.obs import tracing
from repro.service.address import Address, parse_address
from repro.service.requests import ChangeRequest, SolveRequest, SolveResponse
from repro.service.wire import (
    WireError,
    batch_request_to_wire,
    batch_response_from_wire,
    change_request_to_wire,
    recv_frame,
    response_from_wire,
    send_frame,
    solve_request_to_wire,
)


class ServiceClient:
    """One connection to a :class:`~repro.service.daemon.ServiceDaemon`.

    Args:
        address: the daemon's endpoint — a Unix socket path,
            ``unix://PATH``, or ``tcp://HOST:PORT`` (a backend node or a
            ``repro route`` front-end; the wire protocol is identical).
        timeout: per-call socket timeout in seconds (None = block).
        retries: transport-failure retries per request (and connect
            attempts past the first); ``0`` restores fail-fast behaviour.
        backoff: base retry delay in seconds; attempt *n* waits
            ``backoff * 2**n`` plus up to one ``backoff`` of jitter.
        backoff_max: cap on any single retry delay.
        auth_token: shared secret for the daemon's per-connection auth
            handshake; defaults to ``$REPRO_AUTH_TOKEN``.  ``None`` (and
            no env var) skips the handshake — correct against an open
            daemon, a terminal :class:`~repro.errors.AuthError` against
            a guarded one.
        tracer: a :class:`~repro.obs.tracing.Tracer` to born client root
            spans into.  When set (and the tracer's sampling decision
            fires), ``solve``/``change``/``solve_many`` open a root span
            whose context rides the frame header; connect attempts and
            every transport retry become child spans, so a chaos-dropped
            frame's re-send is visible under the same ``trace_id``.
            ``None`` (the default) keeps the client exactly as before.
    """

    def __init__(
        self,
        address: "str | Address",
        *,
        timeout: float | None = 60.0,
        retries: int = 3,
        backoff: float = 0.05,
        backoff_max: float = 2.0,
        auth_token: str | None = None,
        tracer: "tracing.Tracer | None" = None,
    ):
        self.address = parse_address(address)
        #: Back-compat alias: the pre-cluster client was Unix-only and
        #: exposed the path it connected to.
        self.socket_path = (
            self.address.path if self.address.scheme == "unix" else str(address)
        )
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.backoff_max = backoff_max
        if auth_token is None:
            auth_token = os.environ.get("REPRO_AUTH_TOKEN") or None
        self.auth_token = auth_token
        self.tracer = tracer
        #: The outgoing frame's trace context (parsed off the header in
        #: :meth:`_call`); connect/retry child spans parent on it.
        self._trace_ctx: tracing.TraceContext | None = None
        #: Transport failures absorbed by retries (observability only).
        self.retried = 0
        self._sock: socket.socket | None = None
        self._connect()

    # ------------------------------------------------------------------
    def _delay(self, attempt: int) -> float:
        base = min(self.backoff * (2 ** attempt), self.backoff_max)
        return base + random.random() * self.backoff

    def _connect(self) -> None:
        """(Re)connect, retrying refused/missing sockets per the policy.

        When an ``auth_token`` is configured the handshake is part of
        connecting: the token frame must be acknowledged before the
        connection counts as established, so transient rejections (the
        ``auth.reject`` chaos point, a daemon mid-restart) are retried
        inside the same budget.  A rejection that survives the whole
        budget is reported as :class:`~repro.errors.AuthError`.

        Raises :class:`ConnectError` once the budget is spent — the
        daemon is missing, dead, or still draining.
        """
        self._reset()
        t0 = time.monotonic()
        attempts = 0
        last: Exception | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self._delay(attempt - 1))
            attempts += 1
            sock = self.address.create_socket()
            sock.settimeout(self.timeout)
            try:
                sock.connect(self.address.connect_target)
                if self.auth_token is not None:
                    self._handshake(sock)
            except (OSError, WireError, ServiceError) as exc:
                sock.close()
                last = exc
                continue
            self._sock = sock
            self._trace_connect(t0, attempts, None)
            return
        self._trace_connect(t0, attempts, last)
        if isinstance(last, AuthError):
            raise last
        raise ConnectError(
            f"cannot reach daemon at {self.address}: {last}"
        ) from last

    def _handshake(self, sock: socket.socket) -> None:
        """Present the auth token as the connection's first frame."""
        send_frame(sock, {"op": "auth", "token": self.auth_token})
        frame = recv_frame(sock)
        if frame is None:
            raise WireError("daemon closed the connection during auth")
        response, _ = frame
        if not response.get("ok", False):
            raise AuthError(
                f"cannot reach daemon at {self.address}: "
                f"{response.get('error', 'auth rejected')}"
            )

    def _trace_connect(
        self, t0: float, attempts: int, error: Exception | None
    ) -> None:
        """Child span for one (re)connect while a traced call is active."""
        if self.tracer is None or self._trace_ctx is None:
            return
        self.tracer.record(
            "connect",
            parent=self._trace_ctx,
            start=t0,
            duration=time.monotonic() - t0,
            tags={
                "attempts": attempts,
                "error": str(error) if error is not None else None,
            },
        )

    def _reset(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close never really fails
                pass
            self._sock = None

    # ------------------------------------------------------------------
    def _call(
        self,
        header: dict,
        payload: bytes = b"",
        *,
        attempts: int | None = None,
        check: bool = True,
    ) -> dict:
        """One request/response round trip with transport retries.

        A header ``deadline`` is treated as the *total* budget: each
        resend ships only the remainder, so retries never extend the
        caller's wall-clock contract.  With ``check=False`` an error
        response is returned instead of raised — the router's forwarding
        path, where the backend's verdict (error or not) must pass
        through verbatim.
        """
        budget = header.get("deadline")
        t0 = time.monotonic() if budget is not None else 0.0
        total = self.retries + 1 if attempts is None else attempts
        # The frame's own trace context (if any) parents connect/retry
        # child spans — for direct calls that is the root span this
        # client opened; on the router's forwarding path it is the hop
        # span, so backend retries attach to the right node attempt.
        self._trace_ctx = (
            tracing.ctx_from_wire(header.get("trace"))
            if self.tracer is not None
            else None
        )
        last: Exception | None = None
        for attempt in range(total):
            if attempt and budget is not None:
                header = dict(
                    header,
                    deadline=max(0.0, budget - (time.monotonic() - t0)),
                )
            attempt_t0 = time.monotonic()
            try:
                if self._sock is None:
                    self._connect()
                send_frame(self._sock, header, payload)
                frame = recv_frame(self._sock)
                if frame is None:
                    raise WireError("daemon closed the connection")
            except ConnectError:
                # _connect already spent its own retry budget.
                raise
            except (OSError, WireError) as exc:
                self._reset()
                last = exc
                if attempt < total - 1:
                    self.retried += 1
                    if self.tracer is not None and self._trace_ctx is not None:
                        # Each chaos-induced (or real) transport retry is
                        # a child span: the re-sent frame carries the
                        # same trace_id, so the waterfall shows the drop
                        # and the re-send under one trace.
                        self.tracer.record(
                            "retry",
                            parent=self._trace_ctx,
                            start=attempt_t0,
                            duration=time.monotonic() - attempt_t0,
                            tags={"attempt": attempt + 1, "error": str(exc)},
                        )
                    time.sleep(self._delay(attempt))
                    continue
                raise
            response, _ = frame
            if not check:
                return response
            if not response.get("ok", False):
                if response.get("code") == 401:
                    # The daemon wants a token this client was never
                    # given — terminal, and as "unreachable" as a dead
                    # socket for the CLI's one-line contract.  It also
                    # closed the connection after the 401 frame.
                    self._reset()
                    raise AuthError(
                        f"cannot reach daemon at {self.address}: "
                        f"{response.get('error', 'auth required')}"
                    )
                raise ServiceError(response.get("error", "daemon error"))
            return response
        raise ServiceError(f"request failed: {last}")  # pragma: no cover

    # ------------------------------------------------------------------
    def _root_span(self, name: str, **tags) -> "tracing.Span | None":
        """Open a client span for one request, or None when untraced.

        An ambient sampled context (another instrumented layer above
        this client) is continued unconditionally; otherwise the
        tracer's sampling knob decides whether this request starts a
        fresh trace.
        """
        if self.tracer is None:
            return None
        parent = tracing.current()
        if (parent is None or not parent.sampled) and not self.tracer.maybe_trace():
            return None
        return self.tracer.begin(name, parent, **tags)

    def _finish_span(
        self, span: "tracing.Span | None", response: SolveResponse
    ) -> SolveResponse:
        if span is not None:
            self.tracer.finish(
                span, status=response.status, source=response.source or None
            )
        return response

    # ------------------------------------------------------------------
    def ping(self) -> bool:
        """Liveness round trip."""
        return bool(self._call({"op": "ping"}).get("pong"))

    def health(self) -> dict:
        """The daemon's degradation snapshot: pool generation, cache
        degraded flags/error counters, fault-plan state (if chaos is
        installed), drain status."""
        return self._call({"op": "health"})["health"]

    def solve(self, request: SolveRequest) -> SolveResponse:
        """Route one solve request through the daemon.

        A session-*opening* solve mutates the daemon's session table, so
        it gets an idempotency ``request_id`` (when the request has
        none) — a transport retry replays the recorded open response
        instead of landing on the "already exists" error.  Stateless
        solves and sourceless re-queries are naturally idempotent.
        """
        if (
            request.session is not None
            and request.has_source
            and request.request_id is None
        ):
            request = replace(request, request_id=uuid.uuid4().hex)
        span = self._root_span("client.solve", session=request.session)
        if span is not None:
            request = replace(request, trace=tracing.ctx_to_wire(span.context))
        header, payload = solve_request_to_wire(request)
        try:
            response = response_from_wire(self._call(header, payload))
        except BaseException as exc:
            if span is not None:
                self.tracer.finish(span, error=repr(exc))
            raise
        return self._finish_span(span, response)

    def change(self, request: ChangeRequest) -> SolveResponse:
        """Route one change request through the daemon.

        Fills in an idempotency ``change_id`` when the request has none,
        so a transport retry replays the daemon's recorded response
        instead of applying the batch twice.
        """
        if request.change_id is None:
            request = replace(request, change_id=uuid.uuid4().hex)
        span = self._root_span("client.change", session=request.session)
        if span is not None:
            request = replace(request, trace=tracing.ctx_to_wire(span.context))
        try:
            response = response_from_wire(
                self._call(change_request_to_wire(request))
            )
        except BaseException as exc:
            if span is not None:
                self.tracer.finish(span, error=repr(exc))
            raise
        return self._finish_span(span, response)

    def solve_many(
        self,
        formulas: list,
        *,
        deadline: float | None = None,
        seed: int | None = None,
        use_cache: bool = True,
        lead: str | None = None,
    ) -> list[SolveResponse]:
        """Ship a whole batch in one frame (wire-level ``solve_many``).

        Mirrors :meth:`SolverService.solve_many`: one shared pool and
        intra-batch fingerprint dedup on the daemon side, one network
        round trip instead of N on this side.  The replay driver uses
        this for batched trace segments.
        """
        span = self._root_span("client.solve_many", batch=len(formulas))
        header, payload = batch_request_to_wire(
            formulas,
            deadline=deadline,
            seed=seed,
            use_cache=use_cache,
            lead=lead,
            trace=(
                tracing.ctx_to_wire(span.context) if span is not None else None
            ),
        )
        try:
            responses = batch_response_from_wire(self._call(header, payload))
        except BaseException as exc:
            if span is not None:
                self.tracer.finish(span, error=repr(exc))
            raise
        if span is not None:
            self.tracer.finish(span, results=len(responses))
        return responses

    def close_session(self, name: str) -> bool:
        """Drop a named session on the daemon.

        On a retried call the first attempt may already have closed it,
        in which case this reports ``False`` like any other already-gone
        session.
        """
        return bool(
            self._call({"op": "close_session", "session": name}).get("existed")
        )

    def stats(self) -> dict:
        """The daemon's engine/cache counter snapshot."""
        return self._call({"op": "stats"})["stats"]

    def stats_frame(
        self, *, window: float | None = None, recent: int = 0
    ) -> dict:
        """One observability frame: windowed rps/hit-rate, gauges, and
        the lifetime latency histogram (``repro stats --json``).

        Args:
            window: trailing seconds of monitor history folded into the
                rates (daemon default: 60).
            recent: also include this many raw per-second rows under
                ``"series"``.
        """
        header: dict = {"op": "stats_frame"}
        if window is not None:
            header["window"] = window
        if recent:
            header["recent"] = recent
        return self._call(header)["frame"]

    def sync(self, cursor: int = 0, *, limit: int = 256) -> dict:
        """Pull one page of cache entries past *cursor* (anti-entropy).

        Returns the daemon's ``{"cursor", "entries", "more"}`` page; the
        caller merges the entries and pulls again from the new cursor.
        Blindly re-pulling a page is safe: entries are content-addressed
        by fp-v2, so a merge is idempotent by construction.
        """
        return self._call({"op": "sync", "cursor": int(cursor), "limit": int(limit)})

    def forward(self, header: dict, payload: bytes = b"") -> dict:
        """Ship a pre-built frame and return the raw response header.

        The router's data path: error responses come back as values
        (never raised) so the backend's exact verdict frame can be
        relayed to the requester; transport failures still raise and
        still burn this client's retry budget.
        """
        return self._call(dict(header), payload, check=False)

    def cluster_health(self) -> dict:
        """A ``repro route`` front-end's per-node state (generation,
        degraded flags, last synced cursor) plus its own routing
        counters.  A plain single-node daemon answers with an error."""
        return self._call({"op": "cluster_health"})["cluster"]

    def watch(self, *, interval: float = 1.0, count: int | None = None):
        """Subscribe to the daemon's metric push-stream.

        Yields one frame dict per ``interval`` seconds until ``count``
        frames arrived or the daemon drains.  The generator consumes the
        connection's receive side for its whole lifetime — make no other
        calls on this client until it is exhausted (or just dedicate a
        client to watching, as ``repro stats --watch`` does).  The
        stream is *not* retried: a reconnect could not resume a
        half-consumed subscription, so transport errors propagate.
        """
        if self._sock is None:
            self._connect()
        header: dict = {"op": "watch", "interval": interval}
        if count is not None:
            header["count"] = count
        send_frame(self._sock, header)
        ack = recv_frame(self._sock)
        if ack is None:
            raise ServiceError("daemon closed the connection")
        response, _ = ack
        if not response.get("ok", False):
            raise ServiceError(response.get("error", "daemon error"))
        # Frames arrive at most `interval` apart (plus solve jitter);
        # wait generously past that instead of the per-call timeout.
        previous = self._sock.gettimeout()
        self._sock.settimeout(max(interval * 3.0, 10.0))
        try:
            while True:
                frame = recv_frame(self._sock)
                if frame is None:
                    return          # daemon drained mid-stream
                response, _ = frame
                if not response.get("ok", False):
                    raise ServiceError(response.get("error", "daemon error"))
                if response.get("done"):
                    return
                yield response["frame"]
        finally:
            try:
                if self._sock is not None:
                    self._sock.settimeout(previous)
            except OSError:
                pass        # socket already closed; nothing to restore

    def shutdown(self) -> None:
        """Ask the daemon to stop (acknowledged before it exits).

        Single-attempt on purpose: retrying against a daemon that obeyed
        the first request would just burn the connect budget.
        """
        self._call({"op": "shutdown"}, attempts=1)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the connection (idempotent)."""
        self._reset()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
