"""Thin client for a ``repro serve`` daemon.

:class:`ServiceClient` mirrors the :class:`~repro.service.service.
SolverService` surface over the wire — the same typed
:class:`~repro.service.requests.SolveRequest` /
:class:`~repro.service.requests.ChangeRequest` records go in, the same
:class:`~repro.service.requests.SolveResponse` comes back — so code can
switch between an in-process service and a daemon by swapping one
object.  ``repro solve FILE --connect SOCKET`` is exactly this client.

A by-value formula is shipped as the packed kernel's raw wire bytes
(:meth:`~repro.cnf.packed.PackedCNF.to_bytes`): the daemon rebuilds the
flat arrays with two C-level copies and never sees the client's object
graph — the portfolio's worker transport, reused across the process
boundary.
"""

from __future__ import annotations

import socket

from repro.errors import ServiceError
from repro.service.requests import ChangeRequest, SolveRequest, SolveResponse
from repro.service.wire import (
    batch_request_to_wire,
    batch_response_from_wire,
    change_request_to_wire,
    recv_frame,
    response_from_wire,
    send_frame,
    solve_request_to_wire,
)


class ServiceClient:
    """One connection to a :class:`~repro.service.daemon.ServiceDaemon`.

    Args:
        socket_path: the daemon's Unix socket.
        timeout: per-call socket timeout in seconds (None = block).
    """

    def __init__(self, socket_path: str, *, timeout: float | None = 60.0):
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - posix only
            raise ServiceError("ServiceClient needs AF_UNIX sockets")
        self.socket_path = str(socket_path)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        try:
            self._sock.connect(self.socket_path)
        except OSError:
            self._sock.close()
            raise

    # ------------------------------------------------------------------
    def _call(self, header: dict, payload: bytes = b"") -> dict:
        send_frame(self._sock, header, payload)
        frame = recv_frame(self._sock)
        if frame is None:
            raise ServiceError("daemon closed the connection")
        response, _ = frame
        if not response.get("ok", False):
            raise ServiceError(response.get("error", "daemon error"))
        return response

    # ------------------------------------------------------------------
    def ping(self) -> bool:
        """Liveness round trip."""
        return bool(self._call({"op": "ping"}).get("pong"))

    def solve(self, request: SolveRequest) -> SolveResponse:
        """Route one solve request through the daemon."""
        header, payload = solve_request_to_wire(request)
        return response_from_wire(self._call(header, payload))

    def change(self, request: ChangeRequest) -> SolveResponse:
        """Route one change request through the daemon."""
        return response_from_wire(self._call(change_request_to_wire(request)))

    def solve_many(
        self,
        formulas: list,
        *,
        deadline: float | None = None,
        seed: int | None = None,
        use_cache: bool = True,
        lead: str | None = None,
    ) -> list[SolveResponse]:
        """Ship a whole batch in one frame (wire-level ``solve_many``).

        Mirrors :meth:`SolverService.solve_many`: one shared pool and
        intra-batch fingerprint dedup on the daemon side, one network
        round trip instead of N on this side.  The replay driver uses
        this for batched trace segments.
        """
        header, payload = batch_request_to_wire(
            formulas, deadline=deadline, seed=seed, use_cache=use_cache, lead=lead
        )
        return batch_response_from_wire(self._call(header, payload))

    def close_session(self, name: str) -> bool:
        """Drop a named session on the daemon."""
        return bool(
            self._call({"op": "close_session", "session": name}).get("existed")
        )

    def stats(self) -> dict:
        """The daemon's engine/cache counter snapshot."""
        return self._call({"op": "stats"})["stats"]

    def stats_frame(
        self, *, window: float | None = None, recent: int = 0
    ) -> dict:
        """One observability frame: windowed rps/hit-rate, gauges, and
        the lifetime latency histogram (``repro stats --json``).

        Args:
            window: trailing seconds of monitor history folded into the
                rates (daemon default: 60).
            recent: also include this many raw per-second rows under
                ``"series"``.
        """
        header: dict = {"op": "stats_frame"}
        if window is not None:
            header["window"] = window
        if recent:
            header["recent"] = recent
        return self._call(header)["frame"]

    def watch(self, *, interval: float = 1.0, count: int | None = None):
        """Subscribe to the daemon's metric push-stream.

        Yields one frame dict per ``interval`` seconds until ``count``
        frames arrived or the daemon drains.  The generator consumes the
        connection's receive side for its whole lifetime — make no other
        calls on this client until it is exhausted (or just dedicate a
        client to watching, as ``repro stats --watch`` does).
        """
        header: dict = {"op": "watch", "interval": interval}
        if count is not None:
            header["count"] = count
        send_frame(self._sock, header)
        ack = recv_frame(self._sock)
        if ack is None:
            raise ServiceError("daemon closed the connection")
        response, _ = ack
        if not response.get("ok", False):
            raise ServiceError(response.get("error", "daemon error"))
        # Frames arrive at most `interval` apart (plus solve jitter);
        # wait generously past that instead of the per-call timeout.
        previous = self._sock.gettimeout()
        self._sock.settimeout(max(interval * 3.0, 10.0))
        try:
            while True:
                frame = recv_frame(self._sock)
                if frame is None:
                    return          # daemon drained mid-stream
                response, _ = frame
                if not response.get("ok", False):
                    raise ServiceError(response.get("error", "daemon error"))
                if response.get("done"):
                    return
                yield response["frame"]
        finally:
            try:
                self._sock.settimeout(previous)
            except OSError:
                pass        # socket already closed; nothing to restore

    def shutdown(self) -> None:
        """Ask the daemon to stop (acknowledged before it exits)."""
        self._call({"op": "shutdown"})

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close never really fails
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
