"""The :class:`SolverService` facade: one typed front door for everything.

Before this layer the repo had three overlapping entry points —
``ECFlow.resolve``, ``PortfolioEngine.solve``/``solve_many``, and
``IncrementalSession`` — each with its own argument shapes and lifecycle
rules.  ``SolverService`` is the single facade they all route through::

    SolveRequest / ChangeRequest
             │
             ▼
       SolverService ── submit() → PendingSolve (async queries)
        │         │
        │         ├── named IncrementalSessions (multi-tenant)
        │         ▼
        │   one shared PortfolioEngine
        │         │
        │     CacheBackend (in-memory LRU │ persistent disk)
        ▼
     SolveResponse

Design points:

* **one pool, many tenants** — the service owns a single
  :class:`~repro.engine.engine.PortfolioEngine` (built from an
  :class:`~repro.engine.config.EngineConfig`, or injected); every named
  session and every stateless query shares its process pool, verdict
  cache, and statistics, so N concurrent EC streams cost one pool, not N;
* **requests, not call shapes** — callers hand over frozen
  :class:`~repro.service.requests.SolveRequest` /
  :class:`~repro.service.requests.ChangeRequest` records; the paper's
  enable → change → re-solve loop (§5–§7) becomes a stream of such
  records against a long-lived service, which is exactly what the
  ``repro serve`` daemon (:mod:`repro.service.daemon`) exposes over a
  socket;
* **serving layer semantics** — UNSAT and undecided are *responses*
  (tri-state ``status``), never exceptions; the legacy
  ``ECFlow``/``IncrementalSession`` shims re-raise
  :class:`~repro.errors.ECError` on top for their old contracts;
* **concurrent engine, narrow service lock** — the engine path takes no
  service-wide lock: distinct-fingerprint queries overlap end-to-end
  (each race owns per-query ``RaceHandle`` state over the engine's
  shared pool), and identical fingerprints coalesce through the
  engine's single-flight in-flight table.  The service lock shrank to
  session-table and lifecycle mutation only; per-session atomicity
  (change → re-solve) rides each session's own lock.
  :meth:`SolverService.submit` queues requests on a small thread pool
  and returns a future-like :class:`PendingSolve` — with the engine
  concurrent, submission is now genuine parallelism, not just
  pipelining.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict
from typing import TYPE_CHECKING, Iterable

from repro.cnf.formula import CNFFormula
from repro.cnf.packed import PackedCNF
from repro.engine.config import EngineConfig
from repro.engine.engine import EngineResult, PortfolioEngine
from repro.engine.protocol import SAT, UNKNOWN, UNSAT
from repro.errors import ServiceError
from repro.obs import tracing
from repro.service.requests import (
    ChangeRequest,
    ILP_STRATEGY,
    PORTFOLIO_STRATEGY,
    SolveRequest,
    SolveResponse,
)

if TYPE_CHECKING:  # pragma: no cover - typing-only import (cycle guard)
    from repro.engine.session import IncrementalSession


def response_from_engine(result: EngineResult) -> SolveResponse:
    """Map an :class:`EngineResult` onto the service's response record."""
    return SolveResponse(
        status=result.status,
        assignment=result.assignment,
        fingerprint=result.fingerprint,
        source=result.source,
        winner=result.winner,
        wall_time=result.wall_time,
        from_cache=result.from_cache,
        detail=result.outcome.detail if result.outcome is not None else "",
    )


class PendingSolve:
    """A future-like handle for a request accepted by :meth:`SolverService.submit`.

    Wraps a :class:`concurrent.futures.Future`; the result is always a
    :class:`SolveResponse` (service-layer errors surface from
    :meth:`result` as exceptions, exactly like the synchronous calls).
    """

    def __init__(self, future, on_cancel=None):
        self._future = future
        self._on_cancel = on_cancel

    def done(self) -> bool:
        """Whether the response (or an error) is ready."""
        return self._future.done()

    def cancel(self) -> bool:
        """Try to cancel before execution starts.

        A successful cancel runs the service's cancel hook (exactly
        once, even across repeated calls): the ``run`` wrapper that
        normally releases the request's ``queued`` gauge slot will never
        execute for a cancelled future, so the hook releases it instead.
        """
        cancelled = self._future.cancel()
        if cancelled:
            on_cancel, self._on_cancel = self._on_cancel, None
            if on_cancel is not None:
                on_cancel()
        return cancelled

    def result(self, timeout: float | None = None) -> SolveResponse:
        """Block for the response (raises what the request raised)."""
        return self._future.result(timeout)

    def exception(self, timeout: float | None = None):
        """The exception the request raised, if any."""
        return self._future.exception(timeout)


class SolverService:
    """One typed request/response API over flow, engine, and sessions.

    Args:
        config: engine-level configuration (pool width, quick slice,
            line-up, cache backend); a default one when omitted.
        engine: inject an existing engine instead of building one —
            the service then *shares* it and will not close it.
        recorder: a :class:`~repro.workload.trace.TraceRecorder` (or
            anything with its ``record_*`` hooks); every *successful*
            typed op — solve, change, close_session, solve_many — is
            appended after it completes, with its service-side wall
            time.  The service owns the recorder and flushes/closes it
            in :meth:`close` (``repro serve --record`` rides this).
    """

    def __init__(
        self,
        config: EngineConfig | None = None,
        *,
        engine: PortfolioEngine | None = None,
        recorder=None,
    ):
        self.config = config if config is not None else EngineConfig()
        if engine is not None:
            self.engine = engine
            self._owns_engine = False
        else:
            self.engine = PortfolioEngine.from_config(self.config)
            self._owns_engine = True
        # The service shares the engine's live registry: engine-level
        # counters and the latency histogram land there per query, and
        # the service adds request/gauge/per-session telemetry on top.
        # Readers (the daemon's monitor, `repro stats`) only ever touch
        # the registry's narrow lock — never the engine lock.
        self.metrics = self.engine.metrics
        self.recorder = recorder
        self._sessions: dict[str, "IncrementalSession"] = {}
        # Narrow re-entrant lock over session-table and lifecycle
        # mutation ONLY.  The engine path deliberately runs outside it:
        # the engine is thread-safe (single-flight table + shared-pool
        # race scheduling), so holding a service lock across a solve
        # would just re-serialize what PR 7 unblocked.
        self._lock = threading.RLock()
        self._executor: ThreadPoolExecutor | None = None
        self._closed = False
        # True while close() drains queued submissions: new requests are
        # rejected, but the queued ones still execute (and _check_open
        # must keep letting them through until the drain finishes).
        self._draining = False

    # ------------------------------------------------------------------
    # the engine-level primitive every route funnels through
    # ------------------------------------------------------------------
    def query(
        self,
        formula: CNFFormula,
        *,
        deadline: float | None = None,
        seed: int | None = None,
        hint=None,
        use_cache: bool = True,
        lead: str | None = None,
    ) -> SolveResponse:
        """One query against the shared engine — lock-free on this layer.

        This is the single point where the facade touches
        :meth:`PortfolioEngine.solve`; sessions and the flow shim call
        it instead of holding their own engines.  Concurrent callers on
        distinct fingerprints overlap inside the engine; identical
        fingerprints coalesce onto one in-flight race.
        """
        self._check_open()
        result = self.engine.solve(
            formula, deadline=deadline, seed=seed, hint=hint,
            use_cache=use_cache, lead=lead,
        )
        return response_from_engine(result)

    # ------------------------------------------------------------------
    # the typed front door
    # ------------------------------------------------------------------
    def solve(self, request: SolveRequest) -> SolveResponse:
        """Answer one :class:`SolveRequest` (see the module docstring).

        Raises:
            ServiceError: on an unknown strategy, a session mismatch, or
                a closed service.  UNSAT/undecided are *responses*.
        """
        t0 = time.perf_counter()
        self.metrics.adjust_gauge("inflight", 1)
        response = None
        replayed = False
        try:
            response = self._replayed_open(request)
            if response is not None:
                replayed = True
                return response
            # In-process traced callers (no daemon hop) carry their
            # context on the request record; over the wire the daemon
            # has already activated its own span, so this is a no-op.
            with tracing.adopted(request.trace):
                response = self._solve(request)
            return response
        finally:
            # Counted in the finally so failed requests are visible too:
            # a stream of ServiceErrors must show up as rps + errors, not
            # as a dead service.  The recorder stays success-only — a
            # trace is a replayable stream of completed ops — and replays
            # stay out of it: the logical op already happened once.
            self.metrics.adjust_gauge("inflight", -1)
            self._count_request(
                request.session, errors=0 if response is not None else 1
            )
            if response is not None and self.recorder is not None and not replayed:
                self.recorder.record_solve(
                    request, response, time.perf_counter() - t0
                )

    def _replayed_open(self, request: SolveRequest) -> SolveResponse | None:
        """The stored response for a retried session-opening solve.

        Mirrors the ``change_id`` replay in :meth:`change`: the open
        mutated the session table, so a transport retry of the same
        request must replay the recorded response instead of landing on
        the "already exists" error.  Returns None for anything that is
        not a recognized replay — the request then runs normally.
        """
        if (
            request.request_id is None
            or request.session is None
            or not request.has_source
        ):
            return None
        with self._lock:
            session = self._sessions.get(request.session)
        if session is None:
            return None
        with session.lock:
            if (
                request.request_id == session.open_id
                and session.open_response is not None
            ):
                self.metrics.bump(counts={"open_replays": 1})
                return session.open_response
        return None

    def _count_request(
        self, session: str | None, n: int = 1, errors: int = 0
    ) -> None:
        """One registry bump per front-door op (rps + per-tenant usage).

        ``errors`` feeds the ``errors`` counter surfaced in
        ``stats_frame`` — failed requests still count as requests.
        """
        families = (
            {"session_requests": {session: n}} if session is not None else None
        )
        counts = {"requests": n}
        if errors:
            counts["errors"] = errors
        self.metrics.bump(counts=counts, families=families)

    def _solve(self, request: SolveRequest) -> SolveResponse:
        self._check_open()
        if request.session is not None:
            return self._solve_in_session(request)
        formula = self._materialize(request)
        if request.strategy == PORTFOLIO_STRATEGY:
            return self.query(
                formula,
                deadline=request.deadline,
                seed=request.seed,
                hint=request.hint,
                use_cache=request.use_cache,
                lead=request.lead,
            )
        if request.strategy == ILP_STRATEGY:
            return self._solve_ilp(formula, request)
        return self._solve_single(formula, request)

    def change(self, request: ChangeRequest) -> SolveResponse:
        """Apply a change batch to a named session and re-solve.

        ``ec_mode="auto"`` runs the session's §5 policy (loosening
        batches revalidate without any solver, tightening batches race
        with CDCL promoted); ``ec_mode="force"`` always runs a full
        engine query after applying the batch.

        A request carrying a ``change_id`` the session already applied
        replays the recorded response instead of mutating the formula
        again — the idempotency contract the wire client's transport
        retries rely on.

        Raises:
            ServiceError: unknown session or closed service.
            ChangeError: the batch is invalid for the session's formula.
        """
        t0 = time.perf_counter()
        self._check_open()
        self.metrics.adjust_gauge("inflight", 1)
        response = None
        replayed = False
        try:
            with self._lock:
                session = self._session(request.session)
            # Per-session lock: this tenant's apply → re-solve pair is
            # atomic, while other sessions' changes and queries overlap
            # freely on the shared engine.
            with session.lock:
                if (
                    request.change_id is not None
                    and request.change_id == session.last_change_id
                    and session.last_change_response is not None
                ):
                    # A retried change the session already absorbed:
                    # applying it again would double-mutate the formula.
                    replayed = True
                    self.metrics.bump(counts={"change_replays": 1})
                    response = session.last_change_response
                    return response
                with tracing.adopted(request.trace):
                    regime = session.apply_changes(request.changes)
                    if request.ec_mode == "force":
                        raw = session.query(
                            deadline=request.deadline, seed=request.seed
                        )
                    else:
                        raw = session.resolve_query(
                            deadline=request.deadline, seed=request.seed
                        )
                response = raw.with_context(
                    session=request.session, regime=regime
                )
                if request.change_id is not None:
                    session.last_change_id = request.change_id
                    session.last_change_response = response
            return response
        finally:
            self.metrics.adjust_gauge("inflight", -1)
            self._count_request(
                request.session, errors=0 if response is not None else 1
            )
            # Replays stay out of the trace: the recorder captures the
            # logical op stream, and the op already happened once.
            if response is not None and self.recorder is not None and not replayed:
                self.recorder.record_change(
                    request, response, time.perf_counter() - t0
                )

    def submit(
        self, request: SolveRequest | ChangeRequest
    ) -> PendingSolve:
        """Queue a request for asynchronous execution.

        With the engine concurrent (see the class docstring), submitted
        requests on distinct fingerprints genuinely overlap — the worker
        threads race the shared pool side by side, and identical
        fingerprints coalesce onto one in-flight result.
        """
        with self._lock:
            # Checked under the lock so a submit racing close() can
            # neither enqueue after the drain started nor resurrect the
            # executor close() just handed off.
            if self._closed or self._draining:
                raise ServiceError("service is closed")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=max(1, self.config.submit_workers),
                    thread_name_prefix="repro-service",
                )
            executor = self._executor
            fn = self.change if isinstance(request, ChangeRequest) else self.solve
            self.metrics.adjust_gauge("queued", 1)

            def run(request=request, fn=fn):
                # Queue depth covers the wait *before* execution starts;
                # from here the in-flight gauge takes over.
                self.metrics.adjust_gauge("queued", -1)
                return fn(request)

            try:
                return PendingSolve(
                    executor.submit(run),
                    # A successful cancel() means `run` never executes, so
                    # its -1 never fires; this hook balances the gauge
                    # instead (the two paths are mutually exclusive).
                    on_cancel=lambda: self.metrics.adjust_gauge("queued", -1),
                )
            except BaseException:
                self.metrics.adjust_gauge("queued", -1)
                raise

    def solve_many(
        self,
        formulas: Iterable[CNFFormula],
        *,
        deadline: float | None = None,
        seed: int | None = None,
        use_cache: bool = True,
        lead: str | None = None,
    ) -> list[SolveResponse]:
        """Batch entry point: one shared pool, intra-batch fp dedup.

        Wraps :meth:`PortfolioEngine.solve_many` (no service lock — the
        batch interleaves freely with concurrent queries, coalescing via
        the in-flight table on fingerprint collisions) and maps each
        result to a :class:`SolveResponse` (in input order).  Remote
        clients reach this through the daemon's ``solve_many`` op (one
        frame per batch).
        """
        t0 = time.perf_counter()
        self._check_open()
        formulas = list(formulas)
        self.metrics.adjust_gauge("inflight", 1)
        results = None
        try:
            results = self.engine.solve_many(
                formulas, deadline=deadline, seed=seed,
                use_cache=use_cache, lead=lead,
            )
        finally:
            self.metrics.adjust_gauge("inflight", -1)
            if formulas:
                self._count_request(
                    None, len(formulas), errors=0 if results is not None else 1
                )
        responses = [response_from_engine(r) for r in results]
        if self.recorder is not None:
            self.recorder.record_solve_many(
                formulas,
                {"deadline": deadline, "seed": seed,
                 "use_cache": use_cache, "lead": lead},
                responses,
                time.perf_counter() - t0,
            )
        return responses

    # ------------------------------------------------------------------
    # named sessions: many tenants, one pool
    # ------------------------------------------------------------------
    def open_session(
        self,
        name: str,
        formula: CNFFormula,
        *,
        deadline: float | None = None,
        seed: int | None = None,
        use_cache: bool = True,
        lead: str | None = None,
    ) -> SolveResponse:
        """Create a named session over the shared engine and solve it.

        The initial solve's verdict comes back as the response; the
        session exists afterwards either way (a caller may loosen an
        UNSAT instance into satisfiability through change requests).

        Raises:
            ServiceError: the name is already taken or the service is
                closed.
        """
        from repro.engine.session import IncrementalSession

        self._check_open()
        with self._lock:
            if name in self._sessions:
                raise ServiceError(f"session {name!r} already exists")
            session = IncrementalSession(formula, service=self)
            self._sessions[name] = session
            self.metrics.set_gauge("sessions", len(self._sessions))
            self.metrics.bump(counts={"session_opens": 1})
        # The initial solve runs outside the service lock so concurrent
        # opens (and everything else) overlap; the session is visible in
        # the table already, and its own lock orders any racing change().
        response = session.query(
            deadline=deadline, seed=seed, use_cache=use_cache, lead=lead
        )
        return response.with_context(session=name)

    def close_session(self, name: str) -> bool:
        """Drop a named session (the shared engine stays up)."""
        t0 = time.perf_counter()
        with self._lock:
            session = self._sessions.pop(name, None)
            self.metrics.set_gauge("sessions", len(self._sessions))
        self._count_request(None)
        if session is not None:
            session.close()
        if self.recorder is not None:
            self.recorder.record_close_session(
                name, session is not None, time.perf_counter() - t0
            )
        return session is not None

    def session(self, name: str) -> "IncrementalSession":
        """The named session (raises :class:`ServiceError` if unknown)."""
        with self._lock:
            return self._session(name)

    def _session(self, name: str) -> "IncrementalSession":
        try:
            return self._sessions[name]
        except KeyError:
            raise ServiceError(f"unknown session {name!r}") from None

    @property
    def session_names(self) -> tuple[str, ...]:
        """Names of the live sessions, sorted."""
        with self._lock:
            return tuple(sorted(self._sessions))

    def _solve_in_session(self, request: SolveRequest) -> SolveResponse:
        if request.strategy != PORTFOLIO_STRATEGY:
            raise ServiceError(
                "session-scoped requests ride the shared portfolio engine; "
                f"got strategy {request.strategy!r}"
            )
        if request.hint is not None:
            raise ServiceError(
                "session-scoped requests use the session's own solution as "
                "the hint; drop the request hint"
            )
        name = request.session
        with self._lock:
            session = self._sessions.get(name)
            if session is None and not request.has_source:
                raise ServiceError(f"unknown session {name!r}")
            if session is not None and request.has_source:
                raise ServiceError(
                    f"session {name!r} already exists; send a ChangeRequest "
                    "to modify it or a sourceless request to re-query it"
                )
        if session is None:
            # Two concurrent creators race to open_session's own check:
            # exactly one wins, the other gets the "already exists" error.
            response = self.open_session(
                name,
                self._materialize(request),
                deadline=request.deadline,
                seed=request.seed,
                use_cache=request.use_cache,
                lead=request.lead,
            )
            if request.request_id is not None:
                # Recorded before the response frame leaves the daemon,
                # so a retry after a cut/dropped reply always finds it.
                with self._lock:
                    created = self._sessions.get(name)
                if created is not None:
                    with created.lock:
                        created.open_id = request.request_id
                        created.open_response = response
            return response
        response = session.query(
            deadline=request.deadline, seed=request.seed,
            use_cache=request.use_cache, lead=request.lead,
        )
        return response.with_context(session=name)

    # ------------------------------------------------------------------
    # non-portfolio strategies
    # ------------------------------------------------------------------
    def _solve_single(
        self, formula: CNFFormula, request: SolveRequest
    ) -> SolveResponse:
        """Run one named solver adapter under the uniform contract."""
        from repro.engine.adapters import ADAPTERS, build_adapter

        if request.strategy not in ADAPTERS:
            raise ServiceError(
                f"unknown strategy {request.strategy!r} (expected "
                f"'portfolio', 'ilp', or one of {sorted(ADAPTERS)})"
            )
        adapter = build_adapter(request.strategy)
        outcome = adapter.solve(
            formula, deadline=request.deadline, seed=request.seed,
            hint=request.hint,
        )
        return SolveResponse(
            status=outcome.status,
            assignment=outcome.assignment,
            source=adapter.name,
            winner=adapter.name if outcome.status in (SAT, UNSAT) else None,
            wall_time=outcome.wall_time,
            detail=outcome.detail,
        )

    def _solve_ilp(
        self, formula: CNFFormula, request: SolveRequest
    ) -> SolveResponse:
        """The paper's SAT -> set-cover -> 0-1 ILP route."""
        import time

        from repro.ilp.solver import solve
        from repro.ilp.status import SolveStatus
        from repro.sat.encoding import encode_sat

        t0 = time.perf_counter()
        encoding = encode_sat(formula)
        solution = solve(
            encoding.model, method=request.method,
            deadline=request.deadline, seed=request.seed,
        )
        wall = time.perf_counter() - t0
        if solution.status is SolveStatus.INFEASIBLE:
            return SolveResponse(
                UNSAT, source="ilp", winner="ilp", wall_time=wall,
                detail=solution.status.value,
            )
        if not solution.status.has_solution:
            return SolveResponse(
                UNKNOWN, source="ilp", wall_time=wall,
                detail=solution.status.value,
            )
        return SolveResponse(
            SAT,
            assignment=encoding.decode(solution, default=False),
            source="ilp",
            winner="ilp",
            wall_time=wall,
            detail=solution.status.value,
        )

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _materialize(self, request: SolveRequest) -> CNFFormula:
        """The request's formula, whichever source carried it."""
        if request.formula is not None:
            return request.formula
        if request.packed_bytes is not None:
            return PackedCNF.from_bytes(request.packed_bytes).to_formula()
        if request.dimacs_path is not None:
            from repro.cnf.dimacs import read_dimacs

            return read_dimacs(request.dimacs_path)
        raise ServiceError("request carries no formula source")

    def stats(self) -> dict:
        """Engine + cache counters as one JSON-able snapshot.

        The engine block is read under the engine's *narrow* lock (via
        :meth:`PortfolioEngine.stats_snapshot`), so a snapshot racing
        concurrent queries never reads a half-merged delta — without
        queueing behind a running race (the load driver diffs two
        snapshots to report per-run counters).  The ``cache`` block
        carries the backend's introspection (``entries``/``bytes``/
        ``evictions`` from
        :meth:`~repro.engine.cache.CacheBackend.info`), and ``metrics``
        carries the live registry — counters, gauges, per-session
        request families, and the solve-latency histogram summary.
        """
        engine = self.engine
        with engine.lock:
            engine_stats = engine.stats.snapshot()
            cache = engine.cache
            cache_info = (
                cache.info() if hasattr(cache, "info")
                else {"backend": type(cache).__name__, "entries": len(cache),
                      "bytes": 0, "evictions": cache.stats.evictions}
            )
            cache_block = {
                **asdict(cache.stats), "hit_rate": cache.stats.hit_rate,
                **cache_info,
            }
        with self._lock:
            sessions = sorted(self._sessions)
        return {
            "engine": engine_stats,
            "cache": cache_block,
            "sessions": sessions,
            "metrics": self.metrics.snapshot(),
        }

    def health(self) -> dict:
        """Degradation snapshot for the daemon's ``health`` op.

        Complements :meth:`stats` (throughput counters) with the flags
        an operator checks when things go wrong: pool generation and
        solo-fallback count, cache degraded mode and error counters,
        drain state, and the live fault-plan snapshot when chaos is
        installed.
        """
        from repro import faults

        with self._lock:
            sessions = len(self._sessions)
            draining = self._draining
            closed = self._closed
        injector = faults.get_injector()
        return {
            "engine": self.engine.health(),
            "sessions": sessions,
            "draining": draining,
            "closed": closed,
            "errors": self.metrics.counter("errors"),
            "faults": injector.snapshot() if injector is not None else None,
        }

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("service is closed")

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Shut the service down (idempotent).

        Drains the submission executor — already-queued
        :class:`PendingSolve` requests still complete; only *new*
        requests are rejected — then drops every session and closes the
        engine's pool, but only when the service built that engine; an
        injected engine belongs to its creator.
        """
        with self._lock:
            if self._closed or self._draining:
                return
            self._draining = True
            executor, self._executor = self._executor, None
        # Drain outside the lock: the queued requests need it to run.
        if executor is not None:
            executor.shutdown(wait=True)
        with self._lock:
            self._closed = True
            sessions, self._sessions = dict(self._sessions), {}
        for session in sessions.values():
            session.close()
        if self._owns_engine:
            self.engine.close()
        if self.recorder is not None:
            self.recorder.close()

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
