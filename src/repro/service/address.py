"""One address grammar for every daemon endpoint.

Every ``--connect`` flag (solve/stats/loadgen/replay), every ``--peer``,
and every ``repro route --node`` parses through :func:`parse_address`,
so the whole CLI agrees on what a daemon address looks like:

``unix:///run/repro.sock`` (or a bare filesystem path)
    a Unix domain socket — the single-box default.
``tcp://HOST:PORT``
    a TCP frame endpoint (``repro serve --tcp``) — same length-prefixed
    wire codecs, reachable across boxes.

A malformed address is a :class:`~repro.errors.ConnectError`, *not* a
``ValueError``: the CLI's contract for an unreachable daemon is one
``error: cannot reach daemon at ...`` line and exit 1, and a daemon
behind an unparseable address is exactly as unreachable as a daemon
behind a dead one.  (Before this module each flag passed its string
straight to ``socket.connect`` and a typo'd ``tcp://`` spelling died
with a traceback.)
"""

from __future__ import annotations

import socket
from dataclasses import dataclass

from repro.errors import ConnectError


@dataclass(frozen=True)
class Address:
    """A parsed daemon endpoint: ``unix`` path or ``tcp`` host:port."""

    scheme: str
    path: str = ""
    host: str = ""
    port: int = 0

    def __str__(self) -> str:
        if self.scheme == "unix":
            return f"unix://{self.path}"
        return f"tcp://{self.host}:{self.port}"

    @property
    def connect_target(self):
        """What ``socket.connect`` / ``socket.bind`` wants."""
        if self.scheme == "unix":
            return self.path
        return (self.host, self.port)

    def create_socket(self) -> socket.socket:
        """An unconnected socket of the right family.

        TCP sockets get ``TCP_NODELAY``: every request here is one small
        write-then-wait frame exchange, the exact shape Nagle's
        algorithm penalises with a coalescing delay.
        """
        if self.scheme == "unix":
            if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - posix
                raise ConnectError(
                    f"cannot reach daemon at {self}: "
                    "this platform has no AF_UNIX sockets (use tcp://)"
                )
            return socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - option always exists on tcp
            pass
        return sock


def _malformed(value: object, reason: str) -> ConnectError:
    return ConnectError(f"cannot reach daemon at {value!r}: {reason}")


def parse_address(value: "str | Address") -> Address:
    """Parse a daemon address string (idempotent on :class:`Address`).

    Accepts ``tcp://HOST:PORT``, ``unix://PATH``, or a bare path (the
    historical ``--connect SOCKET`` spelling, kept working verbatim).
    Raises :class:`~repro.errors.ConnectError` on anything malformed so
    the CLI's one-line exit-1 contract holds without per-flag handling.
    """
    if isinstance(value, Address):
        return value
    text = str(value).strip()
    if not text:
        raise _malformed(value, "empty address")
    if text.startswith("tcp://"):
        rest = text[len("tcp://"):]
        host, sep, port_text = rest.rpartition(":")
        if not sep or not host:
            raise _malformed(value, "tcp address must be tcp://HOST:PORT")
        try:
            port = int(port_text)
        except ValueError:
            raise _malformed(
                value, f"port {port_text!r} is not an integer"
            ) from None
        if not 0 <= port <= 65535:
            raise _malformed(value, f"port {port} out of range 0-65535")
        return Address(scheme="tcp", host=host, port=port)
    if text.startswith("unix://"):
        path = text[len("unix://"):]
        if not path:
            raise _malformed(value, "unix address must be unix://PATH")
        return Address(scheme="unix", path=path)
    if "://" in text:
        scheme = text.split("://", 1)[0]
        raise _malformed(
            value, f"unknown scheme {scheme!r} (use unix:// or tcp://)"
        )
    return Address(scheme="unix", path=text)


def parse_tcp(value: str) -> Address:
    """Parse a listen spec for ``--tcp``: ``HOST:PORT`` or full URL.

    Port 0 is meaningful here — bind an ephemeral port and report it —
    which is why plain :func:`parse_address` also admits it.
    """
    text = str(value).strip()
    if not text.startswith("tcp://"):
        text = "tcp://" + text
    address = parse_address(text)
    if address.scheme != "tcp":  # pragma: no cover - guarded by prefix
        raise _malformed(value, "expected a tcp HOST:PORT")
    return address
