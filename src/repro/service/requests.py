"""Typed request/response records for the :class:`SolverService` facade.

Every front door of the repo — the Figure-1 :class:`~repro.core.flow.
ECFlow`, the :class:`~repro.engine.session.IncrementalSession`, the CLI,
and the ``repro serve`` daemon — speaks these three records instead of
its own argument shapes:

* :class:`SolveRequest` — one satisfiability query.  The formula arrives
  **by value** (a :class:`~repro.cnf.formula.CNFFormula`), as a DIMACS
  path the service reads, or as the packed kernel's wire bytes
  (:meth:`~repro.cnf.packed.PackedCNF.to_bytes` — what a remote client
  ships); exactly one source must be set.  ``strategy`` picks the route
  (the portfolio engine, the paper's ILP encoding, or any single named
  solver), ``session`` scopes the query to a named incremental session.
* :class:`ChangeRequest` — one engineering-change batch against a named
  session: apply the :class:`~repro.core.change.ChangeSet`, then re-solve
  under the session's §5 policy (``ec_mode="auto"``: loosening batches
  revalidate in O(1), tightening batches race with CDCL promoted) or
  force a full engine query (``ec_mode="force"``).
* :class:`SolveResponse` — the uniform answer: tri-state ``status``, the
  model, fingerprint, and provenance (source/winner/from_cache).  A
  proven-UNSAT or undecided query is a *response*, never an exception —
  the service is a serving layer; the session/flow shims re-raise
  :class:`~repro.errors.ECError` for their legacy contracts.

All three are frozen: a request can be retried, logged, or shipped over
the wire without defensive copies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.core.change import ChangeSet
from repro.engine.protocol import SAT, UNSAT

#: Strategy selector for the paper's SAT -> set-cover -> ILP route.
ILP_STRATEGY = "ilp"
#: Strategy selector for the cached parallel portfolio (the default).
PORTFOLIO_STRATEGY = "portfolio"


@dataclass(frozen=True)
class SolveRequest:
    """One satisfiability query (see the module docstring).

    Attributes:
        formula: the instance by value.
        dimacs_path: ... or a DIMACS file the service reads.
        packed_bytes: ... or the packed kernel's wire bytes.
        strategy: ``"portfolio"`` (default), ``"ilp"``, or a single
            solver name (``cdcl``/``dpll``/``walksat``/``brute``/
            ``ilp-exact``/``ilp-heuristic``).
        method: ILP method (only with ``strategy="ilp"``).
        deadline: wall-clock budget in seconds.
        seed: race seed for randomized solvers.
        use_cache: bypass the verdict cache when False.
        lead: per-race lead-solver override (portfolio strategy only).
        hint: previous solution to revalidate / warm-start from
            (stateless requests only — a session-scoped request always
            uses the session's own solution and rejects a caller hint).
        session: name of the incremental session to route through — a
            new session is opened when the request carries a formula
            source, an existing one is re-queried when it does not.
        request_id: idempotency token for session-*opening* solves.  The
            open mutates service state (the session table), so a blind
            transport retry would land on the "already exists" error;
            the service replays the recorded open response when it sees
            the same id again on the same session.  The wire client
            fills one in automatically; stateless solves (no session)
            are naturally idempotent and never need one.
        trace: optional distributed-tracing context (the compact
            ``{"tid", "sid"}`` wire dict of :mod:`repro.obs.tracing`).
            Purely observational — it never changes the answer — and
            optional on the wire, so requests from older clients parse
            unchanged.
    """

    formula: CNFFormula | None = None
    dimacs_path: str | None = None
    packed_bytes: bytes | None = None
    strategy: str = PORTFOLIO_STRATEGY
    method: str = "exact"
    deadline: float | None = None
    seed: int | None = None
    use_cache: bool = True
    lead: str | None = None
    hint: Assignment | None = None
    session: str | None = None
    request_id: str | None = None
    trace: dict | None = None

    def __post_init__(self) -> None:
        sources = sum(
            x is not None
            for x in (self.formula, self.dimacs_path, self.packed_bytes)
        )
        if sources > 1:
            raise ValueError(
                "SolveRequest takes at most one formula source "
                "(formula | dimacs_path | packed_bytes)"
            )
        if sources == 0 and self.session is None:
            raise ValueError(
                "SolveRequest needs a formula source or a session name"
            )

    @property
    def has_source(self) -> bool:
        """Whether any formula source is set."""
        return (
            self.formula is not None
            or self.dimacs_path is not None
            or self.packed_bytes is not None
        )


#: Recognized :class:`ChangeRequest` execution modes.
EC_MODES = ("auto", "force")


@dataclass(frozen=True)
class ChangeRequest:
    """One engineering-change batch against a named session.

    Attributes:
        session: the session to mutate (must exist).
        changes: the typed change batch to apply.
        deadline/seed: forwarded to the re-solve.
        ec_mode: ``"auto"`` (the session's §5 policy: revalidate
            loosening batches without any solver, race tightening ones)
            or ``"force"`` (always run a full engine query — cache,
            hint revalidation, race — after applying the batch).
        change_id: idempotency token.  A change mutates the session, so a
            blind retry would apply the batch twice; the service replays
            the recorded response when it sees the same id again on the
            same session.  The wire client fills one in automatically.
        trace: optional distributed-tracing context (see
            :class:`SolveRequest`); observational only.
    """

    session: str
    changes: ChangeSet
    deadline: float | None = None
    seed: int | None = None
    ec_mode: str = "auto"
    change_id: str | None = None
    trace: dict | None = None

    def __post_init__(self) -> None:
        if self.ec_mode not in EC_MODES:
            raise ValueError(
                f"unknown ec_mode {self.ec_mode!r} (expected one of {EC_MODES})"
            )


@dataclass(frozen=True)
class SolveResponse:
    """The uniform answer to a solve or change request.

    ``status`` is tri-state (``"sat"`` / ``"unsat"`` / ``"unknown"``);
    ``source`` names what answered (``cache``, ``revalidation``, a
    winning solver, ``batch-dedup``, ...), ``winner`` the racer credited
    with a decided race, and ``regime`` the §5 classification of the
    change batch that triggered a re-solve (change responses only).
    """

    status: str
    assignment: Assignment | None = None
    fingerprint: str = ""
    source: str = ""
    winner: str | None = None
    wall_time: float = 0.0
    from_cache: bool = False
    session: str | None = None
    regime: str = ""
    detail: str = ""

    @property
    def satisfiable(self) -> bool | None:
        """Tri-state satisfiability (None = undecided)."""
        if self.status == SAT:
            return True
        if self.status == UNSAT:
            return False
        return None

    def with_context(self, *, session: str | None = None,
                     regime: str | None = None) -> "SolveResponse":
        """Copy with session/regime context filled in."""
        updates: dict = {}
        if session is not None:
            updates["session"] = session
        if regime is not None:
            updates["regime"] = regime
        return replace(self, **updates) if updates else self
