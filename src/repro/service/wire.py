"""Length-prefixed JSON + packed-bytes framing for ``repro serve``.

One frame = a JSON header plus an optional binary payload::

    header_len  u32 little-endian
    header      UTF-8 JSON, header_len bytes
    payload_len u32 little-endian
    payload     payload_len raw bytes (the packed kernel's wire format)

The header carries everything JSON can say cheaply (op, strategy,
deadline, seed, literals of a model or hint, serialized change batches);
the payload carries the one thing it cannot — a CNF instance — as
:meth:`~repro.cnf.packed.PackedCNF.to_bytes` raw-array bytes, the same
zero-object-graph transport the portfolio already ships to race workers.
A frame with no instance has ``payload_len == 0``.

This module also owns the JSON codecs for the typed records in
:mod:`repro.service.requests` and for :class:`~repro.core.change.
ChangeSet` batches, so the client and the daemon cannot drift apart.
"""

from __future__ import annotations

import json
import socket
import struct

from repro.cnf.assignment import Assignment
from repro.cnf.clause import Clause
from repro.cnf.packed import PackedCNF
from repro.core.change import (
    AddClause,
    AddVariable,
    ChangeSet,
    RemoveClause,
    RemoveVariable,
)
from repro.errors import ReproError
from repro.service.requests import ChangeRequest, SolveRequest, SolveResponse

#: Sanity cap on header/payload sizes (a corrupt length prefix must not
#: make the reader try to allocate gigabytes).
MAX_FRAME_BYTES = 512 * 1024 * 1024

_LEN = struct.Struct("<I")


class WireError(ReproError):
    """A malformed frame or an unserializable record.

    Carries structured context when available — the offending declared
    ``length`` (an over-cap or truncated prefix) and the ``op`` of the
    request being read — so the daemon can log a useful record before
    closing the connection instead of a bare message.
    """

    def __init__(
        self,
        message: str,
        *,
        length: int | None = None,
        op: str | None = None,
    ):
        super().__init__(message)
        self.length = length
        self.op = op


# ----------------------------------------------------------------------
# frame transport
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, header: dict, payload: bytes = b"") -> None:
    """Send one frame (header JSON + optional binary payload)."""
    raw = json.dumps(header, separators=(",", ":")).encode("utf-8")
    sock.sendall(_LEN.pack(len(raw)) + raw + _LEN.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly *n* bytes, or None on a clean EOF at a frame start.

    On a socket with a receive timeout, ``socket.timeout`` propagates
    only when *no* bytes have been read yet (an idle poll the caller may
    retry); once any byte arrived, a timeout means a truncated stream
    and raises :class:`WireError` — retrying would desynchronize the
    framing.
    """
    chunks: list[bytes] = []
    got = 0
    while got < n:
        try:
            chunk = sock.recv(min(65536, n - got))
        except socket.timeout:
            if got == 0:
                raise
            raise WireError(
                f"connection timed out mid-read ({got}/{n} bytes)"
            ) from None
        if not chunk:
            if got == 0:
                return None
            raise WireError(f"connection closed mid-frame ({got}/{n} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket, max_bytes: int | None = None
) -> tuple[dict, bytes] | None:
    """Receive one frame; None when the peer closed between frames.

    On a socket with a receive timeout, ``socket.timeout`` escapes only
    while waiting for a frame to *start* (safe to retry — the daemon's
    shutdown poll); a timeout after the length prefix arrived is a
    :class:`WireError` like any other truncation.

    Args:
        max_bytes: per-connection cap on header/payload sizes; defaults
            to the module-level :data:`MAX_FRAME_BYTES`.
    """
    cap = MAX_FRAME_BYTES if max_bytes is None else max_bytes
    raw_len = _recv_exact(sock, _LEN.size)
    if raw_len is None:
        return None
    (header_len,) = _LEN.unpack(raw_len)
    if header_len > cap:
        raise WireError(
            f"header length {header_len} exceeds the frame cap ({cap})",
            length=header_len,
        )
    try:
        return _recv_frame_body(sock, header_len, cap)
    except socket.timeout:
        raise WireError("connection timed out mid-frame") from None


def _recv_frame_body(
    sock: socket.socket, header_len: int, cap: int
) -> tuple[dict, bytes]:
    header_raw = _recv_exact(sock, header_len)
    if header_raw is None:
        raise WireError("connection closed before the frame header")
    try:
        header = json.loads(header_raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"malformed frame header: {exc}") from None
    if not isinstance(header, dict):
        raise WireError("frame header must be a JSON object")
    op = header.get("op") if isinstance(header.get("op"), str) else None
    raw_len = _recv_exact(sock, _LEN.size)
    if raw_len is None:
        raise WireError("connection closed before the payload length", op=op)
    (payload_len,) = _LEN.unpack(raw_len)
    if payload_len > cap:
        raise WireError(
            f"payload length {payload_len} exceeds the frame cap ({cap})",
            length=payload_len,
            op=op,
        )
    try:
        payload = b"" if payload_len == 0 else _recv_exact(sock, payload_len)
    except WireError as exc:
        raise WireError(str(exc), length=payload_len, op=op) from None
    if payload is None:
        raise WireError("connection closed before the payload", op=op)
    return header, payload


def send_truncated_frame(sock: socket.socket) -> None:
    """Chaos helper: publish a length prefix, then stop mid-frame.

    The peer's framing reader sees a declared header it never receives —
    exactly the torn-write shape a daemon crash mid-``sendall`` would
    produce — and must surface a :class:`WireError`, not hang or
    misparse the next frame.
    """
    sock.sendall(_LEN.pack(64) + b'{"truncated"')


# ----------------------------------------------------------------------
# ChangeSet codec
# ----------------------------------------------------------------------
def changes_to_wire(changes: ChangeSet) -> list[dict]:
    """Serialize a typed change batch to JSON-able operations."""
    ops: list[dict] = []
    for change in changes:
        if isinstance(change, AddClause):
            ops.append({"kind": "add-clause", "lits": list(change.clause.literals)})
        elif isinstance(change, RemoveClause):
            ops.append({"kind": "remove-clause", "lits": list(change.clause.literals)})
        elif isinstance(change, AddVariable):
            ops.append({"kind": "add-var", "var": change.var})
        elif isinstance(change, RemoveVariable):
            ops.append({"kind": "remove-var", "var": change.var})
        else:  # pragma: no cover - the Change union is closed today
            raise WireError(f"unserializable change {change!r}")
    return ops


def changes_from_wire(ops: list[dict]) -> ChangeSet:
    """Rebuild a :class:`ChangeSet` from wire operations."""
    changes = ChangeSet()
    for op in ops:
        kind = op.get("kind")
        if kind == "add-clause":
            changes.add(AddClause(Clause(op["lits"])))
        elif kind == "remove-clause":
            changes.add(RemoveClause(Clause(op["lits"])))
        elif kind == "add-var":
            changes.add(AddVariable(op.get("var")))
        elif kind == "remove-var":
            changes.add(RemoveVariable(op["var"]))
        else:
            raise WireError(f"unknown change kind {kind!r}")
    return changes


# ----------------------------------------------------------------------
# request / response codecs
# ----------------------------------------------------------------------
def solve_request_to_wire(request: SolveRequest) -> tuple[dict, bytes]:
    """(header, payload) for a solve request.

    A by-value formula is shipped as its packed kernel's wire bytes — the
    caller-side object graph never crosses the socket.
    """
    payload = b""
    if request.formula is not None:
        payload = request.formula.packed().to_bytes()
    elif request.packed_bytes is not None:
        payload = request.packed_bytes
    header = {
        "op": "solve",
        "strategy": request.strategy,
        "method": request.method,
        "deadline": request.deadline,
        "seed": request.seed,
        "use_cache": request.use_cache,
        "lead": request.lead,
        "hint": (
            list(request.hint.to_literals()) if request.hint is not None else None
        ),
        "session": request.session,
        "dimacs_path": request.dimacs_path,
        "request_id": request.request_id,
    }
    if request.trace is not None:
        # Optional by design: the key is absent for untraced requests,
        # so frames (and recorded traces) are byte-identical to the
        # pre-tracing wire format unless a span is actually propagating.
        header["trace"] = request.trace
    return header, payload


def solve_request_from_wire(header: dict, payload: bytes) -> SolveRequest:
    """Rebuild a :class:`SolveRequest` on the daemon side."""
    hint = header.get("hint")
    return SolveRequest(
        packed_bytes=payload or None,
        dimacs_path=header.get("dimacs_path"),
        strategy=header.get("strategy", "portfolio"),
        method=header.get("method", "exact"),
        deadline=header.get("deadline"),
        seed=header.get("seed"),
        use_cache=bool(header.get("use_cache", True)),
        lead=header.get("lead"),
        hint=Assignment.from_literals(hint) if hint is not None else None,
        session=header.get("session"),
        request_id=header.get("request_id"),
        trace=(
            header["trace"] if isinstance(header.get("trace"), dict) else None
        ),
    )


def change_request_to_wire(request: ChangeRequest) -> dict:
    """Header for a change request (changes ride the header as JSON)."""
    header = {
        "op": "change",
        "session": request.session,
        "changes": changes_to_wire(request.changes),
        "deadline": request.deadline,
        "seed": request.seed,
        "ec_mode": request.ec_mode,
        "change_id": request.change_id,
    }
    if request.trace is not None:
        header["trace"] = request.trace
    return header


def change_request_from_wire(header: dict) -> ChangeRequest:
    """Rebuild a :class:`ChangeRequest` on the daemon side."""
    return ChangeRequest(
        session=header["session"],
        changes=changes_from_wire(header.get("changes", [])),
        deadline=header.get("deadline"),
        seed=header.get("seed"),
        ec_mode=header.get("ec_mode", "auto"),
        change_id=header.get("change_id"),
        trace=(
            header["trace"] if isinstance(header.get("trace"), dict) else None
        ),
    )


def batch_request_to_wire(
    formulas: list,
    *,
    deadline: float | None = None,
    seed: int | None = None,
    use_cache: bool = True,
    lead: str | None = None,
    trace: dict | None = None,
) -> tuple[dict, bytes]:
    """(header, payload) for a ``solve_many`` batch request.

    The payload concatenates each instance's packed wire bytes; the
    header's ``lens`` list is the split index.  One frame per batch —
    the replay driver ships whole trace segments this way instead of
    paying a round trip per instance.
    """
    payloads = [f.packed().to_bytes() for f in formulas]
    header = {
        "op": "solve_many",
        "lens": [len(p) for p in payloads],
        "deadline": deadline,
        "seed": seed,
        "use_cache": use_cache,
        "lead": lead,
    }
    if trace is not None:
        header["trace"] = trace
    return header, b"".join(payloads)


def batch_request_from_wire(header: dict, payload: bytes) -> tuple[list, dict]:
    """(formulas, shared options) for a ``solve_many`` request frame."""
    lens = header.get("lens", [])
    if not isinstance(lens, list) or any(
        not isinstance(n, int) or n <= 0 for n in lens
    ):
        raise WireError("solve_many header needs a positive-int 'lens' list")
    if sum(lens) != len(payload):
        raise WireError(
            f"solve_many payload is {len(payload)} bytes but 'lens' sums "
            f"to {sum(lens)}"
        )
    formulas = []
    offset = 0
    for n in lens:
        formulas.append(PackedCNF.from_bytes(payload[offset:offset + n]).to_formula())
        offset += n
    options = {
        "deadline": header.get("deadline"),
        "seed": header.get("seed"),
        "use_cache": bool(header.get("use_cache", True)),
        "lead": header.get("lead"),
    }
    return formulas, options


def batch_response_from_wire(header: dict) -> list[SolveResponse]:
    """Rebuild the per-instance responses of a ``solve_many`` frame."""
    return [response_from_wire(r) for r in header.get("results", [])]


def response_to_wire(response: SolveResponse) -> dict:
    """Header for a response frame."""
    return {
        "ok": True,
        "status": response.status,
        "literals": (
            list(response.assignment.to_literals())
            if response.assignment is not None else None
        ),
        "fingerprint": response.fingerprint,
        "source": response.source,
        "winner": response.winner,
        "wall_time": response.wall_time,
        "from_cache": response.from_cache,
        "session": response.session,
        "regime": response.regime,
        "detail": response.detail,
    }


def response_from_wire(header: dict) -> SolveResponse:
    """Rebuild a :class:`SolveResponse` on the client side."""
    lits = header.get("literals")
    return SolveResponse(
        status=header["status"],
        assignment=Assignment.from_literals(lits) if lits is not None else None,
        fingerprint=header.get("fingerprint", ""),
        source=header.get("source", ""),
        winner=header.get("winner"),
        wall_time=float(header.get("wall_time", 0.0)),
        from_cache=bool(header.get("from_cache", False)),
        session=header.get("session"),
        regime=header.get("regime", ""),
        detail=header.get("detail", ""),
    )
