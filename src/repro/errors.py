"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch one base class.  Sub-hierarchies exist per substrate (CNF handling,
ILP solving, engineering change) so tests can assert on precise failure
modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class CNFError(ReproError):
    """Base class for CNF formula construction and manipulation errors."""


class LiteralError(CNFError):
    """An integer is not a valid DIMACS-style literal (e.g. zero)."""


class VariableError(CNFError):
    """A variable index is out of range or otherwise invalid."""


class ClauseError(CNFError):
    """A clause is malformed (empty where not allowed, tautological, ...)."""


class DimacsError(CNFError):
    """A DIMACS file or string could not be parsed."""


class AssignmentError(CNFError):
    """An assignment is incomplete or inconsistent for the requested use."""


class ILPError(ReproError):
    """Base class for ILP modeling and solving errors."""


class ModelError(ILPError):
    """An ILP model is malformed (unknown variable, bad bounds, ...)."""


class InfeasibleError(ILPError):
    """The (I)LP instance was proven infeasible."""


class UnboundedError(ILPError):
    """The (I)LP instance was proven unbounded."""


class SolverLimitError(ILPError):
    """A solver gave up because it hit a node/iteration/time limit."""


class ECError(ReproError):
    """Base class for engineering-change errors."""


class ChangeError(ECError):
    """A change request is invalid for the instance it is applied to."""


class PreservationError(ECError):
    """A preservation specification cannot be honoured."""


class ServiceError(ReproError):
    """A request to the :class:`~repro.service.SolverService` facade is
    invalid (unknown session, bad strategy, closed service, ...)."""


class ConnectError(ServiceError, ConnectionError):
    """The daemon socket could not be reached (missing, refused, or dead)
    after the client's connect-retry budget.

    Also a :class:`ConnectionError` (hence ``OSError``), so callers with
    blanket ``except OSError`` transport handling keep working; the CLI
    catches it specifically to exit 1 with a one-line message instead of
    a traceback.
    """


class AuthError(ConnectError):
    """The daemon refused this client's token-auth handshake.

    A wrong (or missing) token is as terminal as an unreachable socket —
    no amount of resending fixes it — so it shares :class:`ConnectError`'s
    CLI contract: one ``error: cannot reach daemon ...`` line, exit 1.
    Transient rejections injected by the ``auth.reject`` chaos point are
    retried *inside* the connect budget and never surface here.
    """
