"""Consistent hashing over node addresses, keyed by fp-v2.

The router's placement problem is the classic one: spread keys across
nodes so that (a) the same key always lands on the same node — cache
locality is the whole point of routing by fingerprint — and (b) losing
a node only moves that node's keys, not everyone's.  A hash ring with
virtual nodes is the textbook answer and the right amount of machinery
here; anything fancier (rendezvous weights, shard maps) buys nothing at
2-3 nodes.

Hashing uses :mod:`hashlib`, **not** Python's builtin ``hash()``:
``PYTHONHASHSEED`` randomizes the builtin per process, and a ring that
disagrees with itself across router restarts would shred the nodes'
cache locality on every deploy.
"""

from __future__ import annotations

import bisect
import hashlib


def _point(key: str) -> int:
    """A stable 64-bit ring coordinate for *key*."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Immutable consistent-hash ring over node address strings.

    Args:
        nodes: node addresses (duplicates dropped, first-seen order kept).
        replicas: virtual nodes per real node; more smooths the key
            distribution at the cost of a bigger sorted array.
    """

    def __init__(self, nodes, *, replicas: int = 64):
        self.nodes = tuple(dict.fromkeys(str(n) for n in nodes))
        if not self.nodes:
            raise ValueError("hash ring needs at least one node")
        self.replicas = max(1, int(replicas))
        points = [
            (_point(f"{node}#{i}"), node)
            for node in self.nodes
            for i in range(self.replicas)
        ]
        points.sort()
        self._points = points
        self._keys = [p for p, _ in points]

    def preference(self, key: str) -> list[str]:
        """Every node, ordered by ring distance from *key*.

        The first element is the key's owner; the rest are the failover
        order — deterministic, so a retried request after a node death
        lands on the same fallback every time (and that fallback's cache
        warms for exactly the keys it inherited).
        """
        start = bisect.bisect_right(self._keys, _point(key))
        order: list[str] = []
        seen: set[str] = set()
        total = len(self._points)
        for i in range(total):
            node = self._points[(start + i) % total][1]
            if node not in seen:
                seen.add(node)
                order.append(node)
                if len(order) == len(self.nodes):
                    break
        return order

    def pick(self, key: str, *, skip=frozenset()) -> str | None:
        """The key's owner, skipping *skip* (None if everyone is skipped)."""
        for node in self.preference(key):
            if node not in skip:
                return node
        return None
