"""Anti-entropy cache replication: pull loop + offline packet files.

Replication here is deliberately primitive — and correct *because* it
is primitive.  A verdict file is named by fp-v2 and its content is a
pure function of that fingerprint, so the strongest anomaly replication
could produce is an entry a node would eventually have computed anyway.
That collapses the usual replication problem space:

* **pull, don't push** — each node runs a :class:`CacheSyncer` that
  periodically asks its peers for "entries since cursor N" (the
  daemon's ``sync`` op over the disk cache's append-only journal) and
  blind-merges the pages.  A dropped response (the ``sync.drop`` chaos
  point) costs nothing: the cursor was not advanced, the next tick
  re-pulls the same page, and re-merging is a no-op.
* **no vector clocks, no tombstone protocol** — entries are immutable
  and eviction is local (an evicted entry is merely *absent*, and
  absence is always a legal cache state).
* **offline packets** — ``repro cache export`` / ``import`` serialize
  the same pages to a JSONL file, for air-gapped transport or seeding a
  new node from a warm one without network access.

Metric counters: the puller bumps ``sync_pulls`` (pages fetched) and
``sync_merged`` (entries that landed as new files); the serving side
bumps ``sync_requests``/``sync_served``.  ``repro stats`` shows all
four, and the cluster smoke lane asserts ``sync_merged`` went nonzero.
"""

from __future__ import annotations

import json
import threading
import time

from repro.errors import ReproError
from repro.service.address import parse_address
from repro.service.client import ServiceClient

#: Format tag of the first (meta) line of an exported packet file.
PACKET_FORMAT = "repro-cache-packet/1"


class CacheSyncer:
    """Background pull-replication of a :class:`~repro.engine.diskcache.
    DiskCache` from one or more peer daemons.

    The daemon owns the lifecycle: :meth:`start` when it begins serving,
    :meth:`stop` during drain.  Each tick pulls every peer to its
    current cursor; a peer that is down, draining, or not yet serving a
    disk cache is recorded in :meth:`status` and retried next tick —
    eventual consistency needs no per-failure handling.

    Args:
        cache: the local merge target (anything with ``merge_entry``).
        peers: peer daemon addresses (``tcp://HOST:PORT`` or Unix paths).
        interval: seconds between pull rounds.
        auth_token: handshake token for guarded peers (cluster nodes
            share one token; defaults to ``$REPRO_AUTH_TOKEN`` via the
            client).
        limit: page size per ``sync`` request.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`
            receiving ``sync_pulls``/``sync_merged``.
        timeout: per-call socket timeout toward peers.
    """

    def __init__(
        self,
        cache,
        peers,
        *,
        interval: float = 2.0,
        auth_token: str | None = None,
        limit: int = 256,
        metrics=None,
        timeout: float = 10.0,
    ):
        self.cache = cache
        self.peers = tuple(str(parse_address(p)) for p in peers)
        self.interval = max(0.05, float(interval))
        self.auth_token = auth_token
        self.limit = max(1, int(limit))
        self.metrics = metrics
        self.timeout = timeout
        self.pulls = 0
        self.merged = 0
        self._cursors = {peer: 0 for peer in self.peers}
        self._last_error: dict[str, str | None] = {
            peer: None for peer in self.peers
        }
        self._clients: dict[str, ServiceClient] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Run the pull loop on a daemon thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop the loop and close peer connections (idempotent)."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=10.0)
        for client in self._clients.values():
            client.close()
        self._clients.clear()

    def _run(self) -> None:
        # First round immediately: a freshly joined node should warm up
        # in one interval, not two.
        while True:
            try:
                self.sync_once()
            except Exception:  # pragma: no cover - belt and braces
                # A bug in a background replication loop must never
                # take the daemon down; the next tick retries.
                pass
            if self._stop.wait(self.interval):
                return

    # ------------------------------------------------------------------
    def _client(self, peer: str) -> ServiceClient:
        client = self._clients.get(peer)
        if client is None:
            # retries=0: the loop itself is the retry policy — a down
            # peer should cost one failed connect per tick, not a
            # backoff dance inside the tick.
            client = ServiceClient(
                peer,
                timeout=self.timeout,
                retries=0,
                auth_token=self.auth_token,
            )
            self._clients[peer] = client
        return client

    def _drop_client(self, peer: str) -> None:
        client = self._clients.pop(peer, None)
        if client is not None:
            client.close()

    def sync_once(self) -> int:
        """One full round: pull every peer to its cursor; entries merged."""
        total = 0
        for peer in self.peers:
            if self._stop.is_set():
                break
            try:
                client = self._client(peer)
                while True:
                    page = client.sync(self._cursors[peer], limit=self.limit)
                    entries = page.get("entries") or []
                    merged = sum(
                        1 for e in entries if self.cache.merge_entry(e)
                    )
                    with self._lock:
                        self._cursors[peer] = int(
                            page.get("cursor", self._cursors[peer])
                        )
                        self._last_error[peer] = None
                        self.pulls += 1
                        self.merged += merged
                    if self.metrics is not None:
                        self.metrics.bump(
                            counts={"sync_pulls": 1, "sync_merged": merged}
                        )
                    total += merged
                    if not page.get("more"):
                        break
            except (ReproError, OSError) as exc:
                # Down, draining, guarded with another token, or serving
                # no disk cache — note it and move on; ticks retry.
                with self._lock:
                    self._last_error[peer] = str(exc)
                self._drop_client(peer)
        return total

    def status(self) -> dict:
        """Per-peer cursors/errors and lifetime counters (``health`` op)."""
        with self._lock:
            return {
                "peers": {
                    peer: {
                        "cursor": self._cursors[peer],
                        "last_error": self._last_error[peer],
                    }
                    for peer in self.peers
                },
                "pulls": self.pulls,
                "merged": self.merged,
            }


# ----------------------------------------------------------------------
# Offline packets: the same pages, through a file instead of a socket.

def export_packet(cache, path, *, since: int = 0) -> int:
    """Write every cache entry past *since* to a JSONL packet file.

    The first line is a meta record (format tag + cursor range); each
    following line is one entry exactly as the ``sync`` op would ship
    it.  Returns the number of entries written.
    """
    target = cache.sync_cursor()
    cursor = max(0, int(since))
    written = 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({
            "format": PACKET_FORMAT,
            "since": cursor,
            "cursor": target,
        }) + "\n")
        while cursor < target:
            cursor, entries = cache.entries_since(cursor, limit=512)
            for entry in entries:
                fh.write(json.dumps(entry, separators=(",", ":")) + "\n")
                written += 1
    return written


def import_packet(cache, path) -> tuple[int, int]:
    """Merge a packet file; returns ``(entries_seen, entries_merged)``.

    Importing twice — or importing a packet whose entries arrived over
    live sync in the meantime — merges zero new entries and is exactly
    as safe as importing once.
    """
    with open(path, encoding="utf-8") as fh:
        try:
            meta = json.loads(fh.readline())
        except ValueError:
            raise ReproError(f"{path}: not a cache packet (bad meta line)")
        if not isinstance(meta, dict) or meta.get("format") != PACKET_FORMAT:
            raise ReproError(
                f"{path}: not a cache packet (expected {PACKET_FORMAT})"
            )
        seen = merged = 0
        for lineno, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                raise ReproError(
                    f"{path}:{lineno}: corrupt packet line"
                ) from None
            seen += 1
            if cache.merge_entry(entry):
                merged += 1
    return seen, merged
