"""Multi-node serving: TCP nodes, anti-entropy sync, fp-hash routing.

One ``repro serve`` daemon on one box caps how many concurrent change
chains the paper's interactive EC loop can serve.  This package scales
the service *out* without inventing any new consistency machinery, by
leaning on two properties the single-node stack already guarantees:

* **verdicts are content-addressed** — fp-v2 names the instance, the
  cached verdict is a pure function of it, so replicating cache entries
  between nodes is an idempotent blind merge (:mod:`repro.cluster.sync`
  pulls pages of them through the daemon's ``sync`` op);
* **requests are idempotent** — solves coalesce in the single-flight
  table and changes carry idempotency ids, so the router
  (:mod:`repro.cluster.router`) can retry a request on another node
  when one dies mid-flight (:mod:`repro.cluster.hashring` decides who
  owns which fingerprint, and pins named sessions to one node).

The pieces compose into the topology ``scripts/cluster_smoke.py``
exercises in CI: N ``repro serve --tcp`` nodes syncing each other's
caches, one ``repro route`` front-end hashing fingerprints across
them, and unchanged clients pointing ``--connect`` at the router.
"""

from repro.cluster.hashring import HashRing
from repro.cluster.router import RouterDaemon
from repro.cluster.sync import CacheSyncer, export_packet, import_packet

__all__ = [
    "CacheSyncer",
    "HashRing",
    "RouterDaemon",
    "export_packet",
    "import_packet",
]
