"""``repro route``: a fingerprint-hash front-end over backend nodes.

The router speaks the exact same frame protocol as ``repro serve``, so
every existing client — ``repro solve --connect``, the workload runner,
``repro stats`` — points at it unchanged.  Per request it derives a
routing key, asks the :class:`~repro.cluster.hashring.HashRing` for the
owner, and relays the frame verbatim:

* **stateless solves** route by the instance's true fp-v2, computed
  from the packed payload bytes without rebuilding the formula — the
  same key the backend's single-flight table and verdict cache use, so
  repeats of one instance always hit the node that already solved it;
* **named sessions** route by session name: incremental state lives in
  one node's memory, so every op of a session must land on that node
  (the one placement anti-entropy cannot help with);
* **batches** route by a digest of the whole payload.

Failure handling reuses the client stack's machinery rather than
inventing its own: each relay goes through a per-connection
:class:`~repro.service.client.ServiceClient` (retry/backoff/deadline
budgets included), and when a node is down the router walks the ring's
preference order — deterministically, so a dead node's keys all fail
over to the *same* surviving node and warm its cache coherently.
Because solves coalesce and changes carry idempotency ids, re-sending a
request whose node died mid-flight is safe by the same argument that
makes client retries safe.  A background prober polls each node's
``health`` op (pool generation, cache degraded flags, sync cursor) and
publishes the picture through the ``cluster_health`` op; requests
answered locally (``ping``, ``auth``, ``stats``, ``cluster_health``)
never touch a backend.  Streaming ``watch`` subscriptions and ``sync``
pulls are refused with an error frame — peers replicate directly from
nodes, not through the router.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import threading
import time

from repro.cnf.packed import PackedCNF
from repro.errors import CNFError, ConnectError, ReproError, ServiceError
from repro.obs import tracing
from repro.obs.histogram import LatencyHistogram
from repro.service.address import parse_address
from repro.service.client import AuthError, ServiceClient
from repro.service.wire import WireError, recv_frame, send_frame
from repro.cluster.hashring import HashRing


class _NodeState:
    """Mutable health picture of one backend node (prober-owned)."""

    def __init__(self, address: str):
        self.address = address
        self.alive: bool | None = None          # None = never probed yet
        self.generation = None
        self.degraded = None
        self.sync_cursor = None
        self.last_error: str | None = None
        self.checked_at = 0.0

    def snapshot(self) -> dict:
        return {
            "alive": self.alive,
            "generation": self.generation,
            "degraded": self.degraded,
            "sync_cursor": self.sync_cursor,
            "last_error": self.last_error,
            "age": round(time.monotonic() - self.checked_at, 3)
            if self.checked_at
            else None,
        }


class RouterDaemon:
    """Route client frames across backend nodes by consistent hashing.

    Args:
        listen: the front-end endpoint clients connect to (Unix path,
            ``unix://PATH``, or ``tcp://HOST:PORT``; port 0 binds an
            ephemeral port, reported by :attr:`addresses` after bind).
        nodes: backend daemon addresses (2-3 ``repro serve`` endpoints).
        auth_token: token *clients* must present to this router
            (defaults open, like ``repro serve``).
        node_token: token the router presents to the *nodes*; defaults
            to ``auth_token`` — one shared secret per cluster is the
            expected deployment.
        log_path: structured forensics log, same format as the daemon's.
        health_interval: seconds between node ``health`` probes.
        retries: transport retries per relayed request (per node tried).
        timeout: socket timeout toward nodes for relayed requests.
        max_frame_bytes: incoming frame cap, as on the daemon.
        trace_log: JSONL sink for the router's hop spans (``repro route
            --trace-log``).  Hop spans are *continued* for any request
            arriving with a trace context regardless of sampling;
            ``trace_sample`` only governs root-sampling of untraced
            requests.
        trace_sample: root sampling probability for requests that
            arrive without a context (default 0 — continue-only).
    """

    def __init__(
        self,
        listen,
        nodes,
        *,
        auth_token: str | None = None,
        node_token: str | None = None,
        log_path: str | None = None,
        health_interval: float = 2.0,
        retries: int = 2,
        timeout: float | None = 300.0,
        max_frame_bytes: int | None = None,
        trace_log: str | None = None,
        trace_sample: float = 0.0,
    ):
        self.listen = parse_address(listen)
        addresses = [str(parse_address(n)) for n in nodes]
        if not addresses:
            raise ServiceError("repro route needs at least one --node")
        self.ring = HashRing(addresses)
        self.auth_token = auth_token or None
        self.node_token = node_token if node_token is not None else auth_token
        self.log_path = log_path
        self.health_interval = max(0.05, float(health_interval))
        self.retries = max(0, int(retries))
        self.timeout = timeout
        self.max_frame_bytes = max_frame_bytes
        self.tcp_port: int | None = None
        # Deliberately NOT installed process-globally: the router owns
        # its tracer (hop spans + backend-retry spans only); a co-hosted
        # node daemon's tracer must not capture router stages.
        self._tracer = tracing.Tracer(
            service="router", sample=trace_sample, log_path=trace_log
        )
        self._nodes = {a: _NodeState(a) for a in self.ring.nodes}
        # Per-node forward latency (successful relays only) — the
        # observation substrate a hedging policy would read.
        self._latency = {a: LatencyHistogram() for a in self.ring.nodes}
        self._counters = {
            "routed": 0,
            "failovers": 0,
            "unrouted": 0,
            "auth_rejects": 0,
            "errors": 0,
        }
        self._lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._stop = threading.Event()
        self._log_lock = threading.Lock()
        self._conn_threads: list[threading.Thread] = []
        self._prober: threading.Thread | None = None

    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        """Canonical listen address (ephemeral port resolved after bind)."""
        if self.listen.scheme == "tcp" and self.tcp_port:
            return f"tcp://{self.listen.host}:{self.tcp_port}"
        return str(self.listen)

    def _log(self, event: str, **fields) -> None:
        if self.log_path is None:
            return
        record = {
            "mono": round(time.monotonic(), 6),
            "ts": round(time.time(), 3),
            "event": event,
        }
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._log_lock:
            with open(self.log_path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")

    def _count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    # ------------------------------------------------------------------
    def bind(self) -> None:
        if self._listener is not None:
            return
        if self.listen.scheme == "unix":
            try:
                os.unlink(self.listen.path)
            except FileNotFoundError:
                pass
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(self.listen.path)
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind(self.listen.connect_target)
            self.tcp_port = listener.getsockname()[1]
        listener.listen(16)
        listener.settimeout(0.2)
        self._listener = listener
        self._log("listening", address=self.address, nodes=list(self.ring.nodes))

    def serve_forever(self) -> None:
        self.bind()
        self._prober = threading.Thread(target=self._probe_loop, daemon=True)
        self._prober.start()
        try:
            while not self._stop.is_set():
                try:
                    conn, _ = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn,), daemon=True
                )
                thread.start()
                self._conn_threads = [
                    t for t in self._conn_threads if t.is_alive()
                ]
                self._conn_threads.append(thread)
        finally:
            self._close_listener()
            for thread in self._conn_threads:
                thread.join(timeout=10.0)
            if self._prober is not None:
                self._prober.join(timeout=5.0)
            self._log("stopped")

    def start(self) -> threading.Thread:
        """Run :meth:`serve_forever` on a background thread (tests)."""
        self.bind()
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def shutdown(self) -> None:
        self._stop.set()

    def _close_listener(self) -> None:
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:  # pragma: no cover
                pass
        if self.listen.scheme == "unix":
            try:
                os.unlink(self.listen.path)
            except OSError:
                pass

    # ------------------------------------------------------------------
    def _probe_loop(self) -> None:
        """Poll every node's ``health`` op until shutdown.

        Each probe uses a short-lived fail-fast client: the prober's
        job is *detecting* dead nodes, so it must not sit in a backoff
        loop against one.  First round runs immediately so the router
        has a picture before the first request arrives.
        """
        while True:
            for node in self.ring.nodes:
                if self._stop.is_set():
                    return
                self._probe_node(node)
            if self._stop.wait(self.health_interval):
                return

    def _probe_node(self, node: str) -> None:
        state = self._nodes[node]
        client = None
        try:
            client = ServiceClient(
                node, timeout=5.0, retries=0, auth_token=self.node_token
            )
            health = client.health() or {}
            engine = health.get("engine") or {}
            pool = engine.get("pool") or {}
            cache = engine.get("cache") or {}
            with self._lock:
                was_alive = state.alive
                state.alive = True
                state.generation = pool.get("generation")
                state.degraded = bool(cache.get("degraded", False))
                state.sync_cursor = cache.get("sync_cursor")
                state.last_error = None
                state.checked_at = time.monotonic()
            if was_alive is False:
                self._log("node_up", node=node)
        except (ReproError, OSError, WireError) as exc:
            with self._lock:
                was_alive = state.alive
                state.alive = False
                state.last_error = str(exc)
                state.checked_at = time.monotonic()
            if was_alive is not False:
                self._log("node_down", node=node, error=str(exc))
        finally:
            if client is not None:
                client.close()

    def _down_nodes(self) -> set[str]:
        with self._lock:
            return {a for a, s in self._nodes.items() if s.alive is False}

    def _mark_down(self, node: str, exc: Exception) -> None:
        state = self._nodes[node]
        with self._lock:
            was_alive = state.alive
            state.alive = False
            state.last_error = str(exc)
            state.checked_at = time.monotonic()
        if was_alive is not False:
            self._log("node_down", node=node, error=str(exc))

    # ------------------------------------------------------------------
    def _serve_connection(self, conn: socket.socket) -> None:
        conn.settimeout(0.25)
        if conn.family == socket.AF_INET:
            try:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover
                pass
        # Backend connections are per client connection: a session's
        # frames arrive in order on one socket, so relaying them through
        # one client preserves that order on the backend's socket too.
        clients: dict[str, ServiceClient] = {}
        try:
            self._serve_frames(conn, clients)
        finally:
            for client in clients.values():
                client.close()
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()

    def _serve_frames(
        self, conn: socket.socket, clients: dict[str, ServiceClient]
    ) -> None:
        authed = self.auth_token is None
        while not self._stop.is_set():
            try:
                frame = recv_frame(conn, self.max_frame_bytes)
            except socket.timeout:
                continue
            except ConnectionError:
                return
            except WireError as exc:
                self._count("errors")
                self._log("wire_error", error=str(exc))
                self._try_send(conn, {"ok": False, "error": str(exc)})
                return
            if frame is None:
                return
            header, payload = frame
            op = header.get("op", "")
            if op == "auth":
                if self.auth_token is None or authed:
                    if not self._try_send(conn, {"ok": True, "authed": True}):
                        return
                    authed = True
                    continue
                if header.get("token") == self.auth_token:
                    authed = True
                    if not self._try_send(conn, {"ok": True, "authed": True}):
                        return
                    continue
                self._count("errors")
                self._log("auth_fail")
                self._try_send(
                    conn,
                    {"ok": False, "error": "auth failed: bad token", "code": 401},
                )
                return
            if not authed:
                self._count("errors")
                self._log("auth_required", op=op)
                self._try_send(
                    conn,
                    {
                        "ok": False,
                        "error": "auth required: open with an auth frame",
                        "code": 401,
                    },
                )
                return
            t0 = time.perf_counter()
            try:
                response, stop_after = self._dispatch(op, header, payload, clients)
            except ReproError as exc:
                response, stop_after = {"ok": False, "error": str(exc)}, False
            except Exception as exc:  # a bug must not kill the router
                self._count("errors")
                response, stop_after = (
                    {"ok": False, "error": f"internal error: {exc!r}"},
                    False,
                )
            ctx = tracing.ctx_from_wire(header.get("trace"))
            self._log(
                "op",
                op=op,
                ok=bool(response.get("ok")),
                session=header.get("session"),
                wall=round(time.perf_counter() - t0, 6),
                error=response.get("error"),
                trace=ctx.trace_id if ctx is not None else None,
            )
            if not self._try_send(conn, response):
                return
            if stop_after:
                self.shutdown()
                return

    # ------------------------------------------------------------------
    def _dispatch(
        self,
        op: str,
        header: dict,
        payload: bytes,
        clients: dict[str, ServiceClient],
    ) -> tuple[dict, bool]:
        if op == "ping":
            return {"ok": True, "pong": True, "router": True}, False
        if op == "cluster_health":
            return {"ok": True, "cluster": self.cluster_health()}, False
        if op == "health":
            return {"ok": True, "health": self._health()}, False
        if op == "stats":
            return self._aggregate_stats(clients), False
        if op in ("watch", "subscribe", "sync"):
            return {
                "ok": False,
                "error": f"op {op!r} is not routed: connect to a node "
                "directly for streams and replication",
            }, False
        if op == "shutdown":
            return {"ok": True, "stopping": True}, True
        return self._forward(op, header, payload, clients), False

    def _health(self) -> dict:
        """A daemon-shaped health frame so generic probes keep working."""
        with self._lock:
            alive = [a for a, s in self._nodes.items() if s.alive]
            errors = self._counters["errors"]
        return {
            "router": True,
            "nodes_alive": len(alive),
            "nodes_total": len(self.ring.nodes),
            "errors": errors,
        }

    def cluster_health(self) -> dict:
        """Per-node generation/degraded/sync-cursor plus router counters.

        Each node's snapshot carries its forward-latency summary — the
        per-node p50/p99 a tail-hedging policy would key off.
        """
        with self._lock:
            nodes = {}
            for a, s in self._nodes.items():
                snap = s.snapshot()
                snap["latency"] = self._latency[a].summary()
                nodes[a] = snap
            counters = dict(self._counters)
        counters["listen"] = self.address
        counters["health_interval"] = self.health_interval
        return {"router": counters, "nodes": nodes}

    # ------------------------------------------------------------------
    def _route_key(self, op: str, header: dict, payload: bytes) -> str:
        """The placement key for one request (see module docstring)."""
        session = header.get("session")
        if session:
            return f"session:{session}"
        if op == "solve" and payload:
            try:
                # The *true* fp-v2 straight off the packed bytes — the
                # exact key the backend caches under, at the cost of one
                # O(clauses) digest pass and no formula rebuild.
                return "fp:" + PackedCNF.from_bytes(payload).fingerprint()
            except (CNFError, ValueError):
                # Malformed payload: still route it somewhere stable so
                # the owning node produces the authoritative parse error.
                return "payload:" + hashlib.sha256(payload).hexdigest()
        if op == "solve" and header.get("dimacs_path"):
            return "path:" + str(header["dimacs_path"])
        if payload:
            return "payload:" + hashlib.sha256(payload).hexdigest()
        return f"op:{op}"

    def _node_client(
        self, node: str, clients: dict[str, ServiceClient]
    ) -> ServiceClient:
        client = clients.get(node)
        if client is None:
            client = ServiceClient(
                node,
                timeout=self.timeout,
                retries=self.retries,
                auth_token=self.node_token,
                # Backend transport retries become child spans of the
                # hop span riding the forwarded frame's trace header.
                tracer=self._tracer,
            )
            clients[node] = client
        return client

    def _forward(
        self,
        op: str,
        header: dict,
        payload: bytes,
        clients: dict[str, ServiceClient],
    ) -> dict:
        key = self._route_key(op, header, payload)
        down = self._down_nodes()
        preference = self.ring.preference(key)
        # Known-dead nodes go to the back of the line but are still
        # tried: the prober's picture can lag a recovery, and with every
        # node "down" refusing outright would turn a probe blip into an
        # outage.
        order = [n for n in preference if n not in down] + [
            n for n in preference if n in down
        ]
        # Re-parent the trace at the hop: the span continues the
        # client's context (or roots a new trace when the router itself
        # samples), and the forwarded frame carries the *hop's* context
        # so the node's daemon span nests under it.
        ctx = tracing.ctx_from_wire(header.get("trace"))
        span = None
        if ctx is not None:
            span = self._tracer.begin("router.forward", ctx, op=op)
        elif self._tracer.maybe_trace():
            span = self._tracer.begin("router.forward", op=op)
        if span is not None:
            header = dict(header)
            header["trace"] = tracing.ctx_to_wire(span.context)
        last: Exception | None = None
        for index, node in enumerate(order):
            try:
                client = self._node_client(node, clients)
                n0 = time.monotonic()
                response = client.forward(header, payload)
            except AuthError as exc:
                # The node refused our token — a clean 401, not a dead
                # peer.  Count it, drop the node from this request, and
                # let the ring try the next one.
                self._count("auth_rejects")
                self._mark_down(node, exc)
                clients.pop(node, None)
                last = exc
                continue
            except (ConnectError, OSError, WireError) as exc:
                # ConnectError covers the prober-race window: the node
                # died moments ago, nothing has marked it down yet, and
                # the eager-connecting client constructor is the first
                # to find out.  The ring's next choice absorbs it.
                self._mark_down(node, exc)
                stale = clients.pop(node, None)
                if stale is not None:
                    stale.close()
                last = exc
                continue
            with self._lock:
                hist = self._latency.get(node)
                if hist is not None:
                    hist.record(time.monotonic() - n0)
            self._count("routed")
            if index:
                self._count("failovers")
                self._log("failover", key=key[:64], node=node, tried=index)
            if span is not None:
                self._tracer.finish(span, node=node, tried=index + 1)
            return response
        self._count("unrouted")
        if span is not None:
            self._tracer.finish(span, error=str(last), tried=len(order))
        return {
            "ok": False,
            "error": f"no reachable node for {op!r} "
            f"(tried {len(order)}): {last}",
        }

    # ------------------------------------------------------------------
    def _aggregate_stats(self, clients: dict[str, ServiceClient]) -> dict:
        """Deep-sum every node's ``stats`` so counter deltas over the
        router (``repro loadgen --connect``) see cluster-wide totals."""
        merged: dict = {}
        reached: list[str] = []
        last: Exception | None = None
        for node in self.ring.nodes:
            try:
                client = self._node_client(node, clients)
                stats = client.stats()
            except (ReproError, OSError, WireError) as exc:
                self._mark_down(node, exc)
                stale = clients.pop(node, None)
                if stale is not None:
                    stale.close()
                last = exc
                continue
            reached.append(node)
            merged = _merge_stats(merged, stats)
        if not reached:
            return {
                "ok": False,
                "error": f"no reachable node for 'stats': {last}",
            }
        with self._lock:
            node_latency = {
                a: self._latency[a].summary() for a in self.ring.nodes
            }
        merged["cluster"] = {
            "nodes": reached,
            "router": self.address,
            "node_latency": node_latency,
        }
        return {"ok": True, "stats": merged}

    @staticmethod
    def _try_send(conn: socket.socket, header: dict) -> bool:
        try:
            send_frame(conn, header)
            return True
        except OSError:
            return False


def _merge_stats(a, b):
    """Recursively combine stats payloads: numbers add, dicts merge,
    lists concatenate, and mismatched shapes keep the first value."""
    if isinstance(a, dict) and isinstance(b, dict):
        out = dict(a)
        for key, value in b.items():
            out[key] = _merge_stats(a[key], value) if key in a else value
        return out
    if isinstance(a, bool) or isinstance(b, bool):
        return a or b
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return a + b
    if isinstance(a, list) and isinstance(b, list):
        return a + b
    return a if a is not None else b
